#include "tilo/exec/regions.hpp"

#include "tilo/util/error.hpp"

namespace tilo::exec {

std::vector<CommRegion> comm_regions(const tile::TiledSpace& space,
                                     const Vec& t_src, const Vec& e) {
  TILO_REQUIRE(space.tile_space().contains(t_src),
               "source tile outside tile space");
  const Vec t_dst = t_src + e;
  std::vector<CommRegion> out;
  if (!space.tile_space().contains(t_dst)) return out;

  const Box src_box = space.tile_iterations(t_src);
  const Box dst_box = space.tile_iterations(t_dst);
  const auto& deps = space.deps();
  for (std::size_t i = 0; i < deps.size(); ++i) {
    // Points p of the producer tile whose value p + d lands in the consumer
    // tile: p ∈ B(src) ∩ (B(dst) - d).
    const Box needed = src_box.intersect(dst_box.shifted(-deps[i]));
    if (!needed.empty()) out.push_back(CommRegion{i, needed});
  }
  return out;
}

i64 region_points(const std::vector<CommRegion>& regions) {
  i64 acc = 0;
  for (const CommRegion& r : regions)
    acc = util::checked_add(acc, r.points.volume());
  return acc;
}

i64 region_bytes(const std::vector<CommRegion>& regions,
                 int bytes_per_element) {
  TILO_REQUIRE(bytes_per_element >= 1, "bytes_per_element must be >= 1");
  return util::checked_mul(region_points(regions), bytes_per_element);
}

std::vector<TileComm> outgoing(const tile::TiledSpace& space, const Vec& t) {
  std::vector<TileComm> out;
  const auto& deps = space.tile_deps();
  for (std::size_t i = 0; i < deps.size(); ++i) {
    std::vector<CommRegion> regions = comm_regions(space, t, deps[i]);
    if (regions.empty()) continue;
    const i64 pts = region_points(regions);
    out.push_back(TileComm{deps[i], std::move(regions), pts, i});
  }
  return out;
}

std::vector<TileComm> incoming(const tile::TiledSpace& space, const Vec& t) {
  std::vector<TileComm> in;
  const auto& deps = space.tile_deps();
  for (std::size_t i = 0; i < deps.size(); ++i) {
    const Vec t_src = t - deps[i];
    if (!space.tile_space().contains(t_src)) continue;
    std::vector<CommRegion> regions = comm_regions(space, t_src, deps[i]);
    if (regions.empty()) continue;
    const i64 pts = region_points(regions);
    in.push_back(TileComm{deps[i], std::move(regions), pts, i});
  }
  return in;
}

}  // namespace tilo::exec
