// A complete execution plan: tiled space + processor mapping + schedule
// kind.  This is what the executors and the closed-form predictors consume.
#pragma once

#include <cstddef>

#include "tilo/loopnest/nest.hpp"
#include "tilo/sched/mapping.hpp"
#include "tilo/sched/tiled.hpp"
#include "tilo/tiling/tilespace.hpp"

namespace tilo::exec {

using sched::ProcessorMapping;
using sched::ScheduleKind;
using tile::TiledSpace;

/// Everything needed to execute a tiled nest on a (simulated) cluster.
struct TilePlan {
  TiledSpace space;
  std::size_t mapped_dim;
  ProcessorMapping mapping;
  ScheduleKind kind;

  /// Theoretical number of time hyperplanes P(g) for this plan's schedule
  /// (the paper's closed forms; assumes one tile column per processor).
  util::i64 schedule_length() const;
};

/// Builds a plan with the paper's defaults: the mapping dimension is the
/// largest tiled dimension, one processor per tile column.
TilePlan make_plan(const loop::LoopNest& nest, tile::RectTiling tiling,
                   ScheduleKind kind);

/// Same, but with an explicit processor-grid size per dimension
/// (procs[mapped_dim] is forced to 1); tile columns are block-distributed.
TilePlan make_plan_with_procs(const loop::LoopNest& nest,
                              tile::RectTiling tiling, ScheduleKind kind,
                              lat::Vec procs);

/// Fully explicit variant: caller fixes the mapping dimension too.  Needed
/// when sweeping the tile height V makes the mapped dimension's tiled
/// extent temporarily smaller than another dimension's.
TilePlan make_plan_explicit(const loop::LoopNest& nest,
                            tile::RectTiling tiling, ScheduleKind kind,
                            std::size_t mapped_dim, lat::Vec procs);

}  // namespace tilo::exec
