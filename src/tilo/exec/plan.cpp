#include "tilo/exec/plan.hpp"

#include "tilo/util/error.hpp"

namespace tilo::exec {

util::i64 TilePlan::schedule_length() const {
  // Normalize the last tile to first-tile-at-origin coordinates.
  const lat::Vec u = space.tile_space().hi() - space.tile_space().lo();
  return kind == ScheduleKind::kOverlap
             ? sched::overlap_schedule_length(u, mapped_dim)
             : sched::nonoverlap_schedule_length(u);
}

TilePlan make_plan(const loop::LoopNest& nest, tile::RectTiling tiling,
                   ScheduleKind kind) {
  TiledSpace space(nest, std::move(tiling));
  const std::size_t mapped = sched::choose_mapped_dim(space.tile_space());
  ProcessorMapping mapping =
      ProcessorMapping::one_column_per_proc(space.tile_space(), mapped);
  return TilePlan{std::move(space), mapped, std::move(mapping), kind};
}

TilePlan make_plan_with_procs(const loop::LoopNest& nest,
                              tile::RectTiling tiling, ScheduleKind kind,
                              lat::Vec procs) {
  TiledSpace space(nest, tiling);
  const std::size_t mapped = sched::choose_mapped_dim(space.tile_space());
  return make_plan_explicit(nest, std::move(tiling), kind, mapped,
                            std::move(procs));
}

TilePlan make_plan_explicit(const loop::LoopNest& nest,
                            tile::RectTiling tiling, ScheduleKind kind,
                            std::size_t mapped_dim, lat::Vec procs) {
  TiledSpace space(nest, std::move(tiling));
  TILO_REQUIRE(mapped_dim < space.dims(), "mapped_dim out of range");
  TILO_REQUIRE(procs.size() == space.dims(),
               "procs dimensionality mismatch");
  procs[mapped_dim] = 1;
  ProcessorMapping mapping(space.tile_space(), mapped_dim, std::move(procs));
  return TilePlan{std::move(space), mapped_dim, std::move(mapping), kind};
}

}  // namespace tilo::exec
