// The executors: run a TilePlan on the simulated cluster.
//
// ScheduleKind::kNonOverlap runs the paper's blocking ProcB program
// (receive - compute - send triplets, Section 3 / Fig. 1) and
// ScheduleKind::kOverlap runs the nonblocking ProcNB program
// (isend(k-1) / irecv(k+1) / compute(k) / wait, Section 4.1 / Fig. 2).
//
// Timed mode advances the clock by the machine cost model; functional mode
// additionally moves real values through the messages and can validate the
// distributed result against the sequential nest.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "tilo/exec/plan.hpp"
#include "tilo/loopnest/reference.hpp"
#include "tilo/machine/cost.hpp"
#include "tilo/msg/cluster.hpp"
#include "tilo/obs/sink.hpp"

namespace tilo::exec {

/// Communication-model knobs, shared by single runs (RunOptions) and
/// sweeps (core::SweepOptions) so the two cannot drift apart.
struct CommConfig {
  /// DMA capability for the overlapping executor (kDma or kDuplexDma).
  mach::OverlapLevel level = mach::OverlapLevel::kDma;
  /// Interconnect model.
  msg::Network network = msg::Network::kSwitched;
  /// Message protocol for the nonblocking path (eager vs rendezvous).
  msg::Protocol protocol = msg::Protocol::kEager;
};

/// Per-tile cost refinement for non-uniform workloads (projective nests
/// and other domains whose tiles do not all carry the same iteration
/// volume).  A null hook means every tile costs its full box volume and
/// every message its full face surface — the historical constant-cost fast
/// path, whose event trace (and result bytes) must never change.
class TileCostModel {
 public:
  virtual ~TileCostModel() = default;

  /// Iterations actually executed in the tile at coordinate `tile` whose
  /// bounding box is `box` (<= box.volume()).
  virtual util::i64 tile_iterations(const lat::Vec& tile,
                                    const lat::Box& box) const = 0;

  /// Points actually exchanged by the message consumed by `tile` (whose
  /// bounding box is `box`) along tile-offset `offset`, where `points` is
  /// the uniform face surface the plan's geometry derives.  Producer and
  /// consumer both route through the consumer's coordinate, so the two
  /// ends of one message always agree on its size.
  virtual util::i64 message_points(const lat::Vec& tile, const lat::Box& box,
                                   const lat::Vec& offset,
                                   util::i64 points) const = 0;
};

/// Failure injection (tests): lets tests exercise the stall detector in
/// run_plan without reaching into the cluster.
struct FaultPlan {
  /// The N-th message sent (0-based) is silently lost on the wire
  /// (-1 = off).
  util::i64 drop_message = -1;

  bool any() const { return drop_message >= 0; }
};

/// Execution options.
struct RunOptions {
  /// Move and verify real values (tests/examples); otherwise timing only.
  bool functional = false;
  /// Communication model (overlap level, network, protocol).
  CommConfig comm;
  /// Optional observer for phase spans and run counters (must outlive the
  /// call).  Pass a trace::Timeline, obs::Registry, obs::ChromeTraceSink,
  /// ... — or an obs::MultiSink fanning out to several.  Observation never
  /// changes simulated behavior: the (time, seq) event trace is identical
  /// with or without a sink.
  obs::Sink* sink = nullptr;
  /// Failure injection (tests).
  FaultPlan faults;
  /// Per-tile cost refinement (must outlive the call); nullptr keeps the
  /// constant-cost fast path.  Incompatible with `functional` (trimmed
  /// messages would no longer match the value regions).
  const TileCostModel* tile_costs = nullptr;
};

/// Execution outcome.
struct RunResult {
  double seconds = 0.0;       ///< simulated completion time
  sim::Time completion = 0;   ///< same, in ns
  util::i64 messages = 0;     ///< messages sent
  util::i64 bytes = 0;        ///< payload bytes sent
  /// Peak bytes simultaneously in flight — the extra message buffering the
  /// overlap needs (paper Fig. 6).
  util::i64 peak_inflight_bytes = 0;
  /// Total halo storage across ranks (extended minus owned cells, in
  /// bytes) — the per-node extra space of Fig. 6.
  util::i64 halo_bytes = 0;
  std::uint64_t events = 0;   ///< simulator events processed
  /// Tile-DAG runs: the ALAP-based makespan lower bound in ns (see
  /// workload::alap_lower_bound); 0 for workloads without a DAG bound.
  sim::Time alap_lower_bound = 0;
  /// Bytes sent per (src rank, dst rank) — the communication matrix.
  std::map<std::pair<int, int>, util::i64> traffic;
  /// Functional mode: the assembled global result field.
  std::optional<loop::DenseField> field;
};

class RunWorkspace;

/// Runs the plan on a simulated cluster with the given machine parameters.
/// The nest must be the one the plan's tiled space was built from.
/// Throws util::Error if any rank program stalls (e.g. a lost message or a
/// scheduling deadlock) instead of silently returning partial results.
///
/// `workspace` (optional) carries reusable buffers across runs: the
/// per-rank state vector and the per-tile communication-geometry table.
/// Passing the same workspace to consecutive runs over the same tiled
/// geometry (e.g. the overlap and non-overlap schedules at one tile height
/// V) amortizes tile enumeration and region computation; results are
/// byte-identical with or without a workspace.
RunResult run_plan(const loop::LoopNest& nest, const TilePlan& plan,
                   const mach::MachineParams& params,
                   const RunOptions& opts = {},
                   RunWorkspace* workspace = nullptr);

/// Model-aware runs: every stage cost (and any interference stall) comes
/// from `model`.  With an IdealOverlapModel the event trace — and thus
/// every result field — is identical to the MachineParams overload, which
/// in fact forwards here through the deprecation shim.
RunResult run_plan(const loop::LoopNest& nest, const TilePlan& plan,
                   std::shared_ptr<const mach::Model> model,
                   const RunOptions& opts = {},
                   RunWorkspace* workspace = nullptr);

/// Opaque reusable execution scratch (see run_plan).  Cheap to construct;
/// not thread-safe — use one workspace per worker thread.
class RunWorkspace {
 public:
  RunWorkspace();
  ~RunWorkspace();
  RunWorkspace(RunWorkspace&&) noexcept;
  RunWorkspace& operator=(RunWorkspace&&) noexcept;
  RunWorkspace(const RunWorkspace&) = delete;
  RunWorkspace& operator=(const RunWorkspace&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;

  friend RunResult run_plan(const loop::LoopNest&, const TilePlan&,
                            std::shared_ptr<const mach::Model>,
                            const RunOptions&, RunWorkspace*);
};

/// Convenience: functional run + comparison against the sequential
/// reference.  Returns the max absolute element difference.
double run_and_validate(const loop::LoopNest& nest, const TilePlan& plan,
                        const mach::MachineParams& params);

}  // namespace tilo::exec
