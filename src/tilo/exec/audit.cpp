#include "tilo/exec/audit.hpp"

#include <algorithm>
#include <vector>

#include "tilo/exec/regions.hpp"
#include "tilo/util/error.hpp"

namespace tilo::exec {

namespace {

using lat::Box;
using lat::Vec;
using util::i64;

}  // namespace

double critical_path_lower_bound(const TilePlan& plan,
                                 const mach::MachineParams& params) {
  const tile::TiledSpace& space = plan.space;
  const Box& ts = space.tile_space();
  TILO_REQUIRE(ts.volume() <= (i64{1} << 22),
               "tile space too large for the audit DP");

  std::vector<double> finish(static_cast<std::size_t>(ts.volume()), 0.0);
  // Previous tile in each rank's program order: same column, k-1; across
  // columns the order is lexicographic per rank, which only adds more
  // serialization — using just the k-chain keeps the bound valid.
  const std::size_t md = plan.mapped_dim;

  double makespan = 0.0;
  ts.for_each_point([&](const Vec& t) {
    const double comp =
        static_cast<double>(space.tile_iterations(t).volume()) * params.t_c;
    double start = 0.0;

    // Serial CPU: the same rank computed (t with k-1) immediately before.
    if (t[md] > ts.lo()[md]) {
      Vec prev = t;
      --prev[md];
      start = std::max(
          start, finish[static_cast<std::size_t>(ts.linear_index(prev))]);
    }

    // Producers: cheapest conceivable pipeline (no CPU fills, no queueing).
    const std::vector<TileComm> ins = incoming(space, t);
    for (const TileComm& in : ins) {
      const Vec src = t - in.offset;
      const double src_finish =
          finish[static_cast<std::size_t>(ts.linear_index(src))];
      if (plan.mapping.rank_of_tile(src) == plan.mapping.rank_of_tile(t)) {
        start = std::max(start, src_finish);
        continue;
      }
      const i64 bytes =
          util::checked_mul(in.points, params.bytes_per_element);
      const double pipeline = 2.0 * params.fill_kernel_buffer.at(bytes) +
                              params.t_t * static_cast<double>(bytes) +
                              params.wire_latency;
      start = std::max(start, src_finish + pipeline);
    }

    const double done = start + comp;
    finish[static_cast<std::size_t>(ts.linear_index(t))] = done;
    makespan = std::max(makespan, done);
  });
  return makespan;
}

}  // namespace tilo::exec
