// The simulated cluster: engine + per-node endpoints, DMA channels and the
// network model.  Substitutes the paper's 16-node Pentium/FastEthernet
// testbed (see DESIGN.md §2).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "tilo/machine/model.hpp"
#include "tilo/machine/params.hpp"
#include "tilo/msg/endpoint.hpp"
#include "tilo/obs/sink.hpp"
#include "tilo/sim/engine.hpp"
#include "tilo/sim/resource.hpp"

namespace tilo::msg {

/// Network topology model.
enum class Network {
  kSwitched,  ///< full-duplex switch: contention only at node ports (default)
  kSharedBus, ///< classic shared Ethernet: one bus serializes all wire time
};

/// Message protocol for the nonblocking (DMA) path.
enum class Protocol {
  kEager,       ///< data ships immediately; receiver buffers unexpected
                ///< messages (MPICH's small-message behavior, the paper's
                ///< regime)
  kRendezvous,  ///< data ships only after a request-to-send /
                ///< clear-to-send handshake with a posted receive
                ///< (large-message behavior; adds round-trip latency)
};

/// A simulated cluster of `num_nodes` identical nodes.
class Cluster {
 public:
  /// `sink` (optional, must outlive the cluster) observes every phase
  /// interval the cluster and its endpoints charge; nullptr disables all
  /// recording at the cost of one branch per interval.  All stage costs
  /// come from `model` (per-link wire times, interference stalls, ...).
  Cluster(int num_nodes, std::shared_ptr<const mach::Model> model,
          mach::OverlapLevel level = mach::OverlapLevel::kDma,
          Network network = Network::kSwitched,
          obs::Sink* sink = nullptr,
          Protocol protocol = Protocol::kEager);

  /// Deprecation shim: wraps `params` in an IdealOverlapModel, whose hook
  /// expressions match the historical direct-params arithmetic bit for
  /// bit.  Kept for one release; migrate to the model constructor.
  Cluster(int num_nodes, const mach::MachineParams& params,
          mach::OverlapLevel level = mach::OverlapLevel::kDma,
          Network network = Network::kSwitched,
          obs::Sink* sink = nullptr,
          Protocol protocol = Protocol::kEager);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  sim::Engine& engine() { return engine_; }
  const mach::MachineParams& params() const { return params_; }
  const mach::Model& model() const { return *model_; }
  mach::OverlapLevel level() const { return level_; }
  Protocol protocol() const { return protocol_; }
  obs::Sink* sink() { return sink_; }

  Endpoint& node(int rank);

  /// Runs the simulation to completion and returns the final time.
  sim::Time run();

  /// Totals across the whole run.
  i64 messages_sent() const { return messages_; }
  i64 bytes_sent() const { return bytes_; }
  /// Peak bytes simultaneously in flight (sent but not yet handed to a
  /// receive) — the extra buffer space communication overlap needs
  /// (paper Fig. 6).
  i64 peak_inflight_bytes() const { return peak_inflight_; }

  /// Failure injection (tests): the `index`-th message sent (0-based)
  /// is silently lost on the wire — its send completes locally, the
  /// receiver never sees it.  -1 disables (default).
  void inject_message_loss(i64 index) { drop_index_ = index; }

  /// Bytes sent per (src, dst) pair — the communication matrix.
  const std::map<std::pair<int, int>, i64>& traffic() const {
    return traffic_;
  }

  /// Suspended-program registry (used by the executors' coroutine
  /// awaitables): a program parks its coroutine address while waiting on a
  /// message handle and removes it on resume.  After the engine drains, a
  /// stalled run reclaims whatever is still parked so injected failures
  /// cannot leak coroutine frames.
  void register_suspended(void* coroutine_address) {
    suspended_.insert(coroutine_address);
  }
  void unregister_suspended(void* coroutine_address) {
    suspended_.erase(coroutine_address);
  }
  /// Returns and clears the parked set.
  std::set<void*> take_suspended() { return std::move(suspended_); }

  // --- cost conversion helpers (seconds model -> simulated ns) ---
  // Wire helpers take an optional (src, dst) so heterogeneous-link models
  // can charge per-link costs; negative endpoints mean the default link.
  sim::Time fill_mpi_ns(i64 bytes) const;
  sim::Time fill_kernel_ns(i64 bytes) const;
  sim::Time half_wire_ns(i64 bytes, int src = -1, int dst = -1) const;
  sim::Time latency_ns(int src = -1, int dst = -1) const;
  sim::Time compute_ns(i64 iterations, i64 working_set_bytes = 0) const;
  /// CPU stall charged alongside an offloaded send/recv (0 under perfect
  /// overlap; executors guard on > 0 so ideal traces are untouched).
  sim::Time send_interference_ns(i64 bytes) const;
  sim::Time recv_interference_ns(i64 bytes) const;

 private:
  friend class Endpoint;

  struct NodeState {
    std::unique_ptr<Endpoint> endpoint;
    // kDma: send and recv share channel[0]; kDuplexDma: [0]=send, [1]=recv.
    std::unique_ptr<sim::Resource> channel[2];
  };

  sim::Resource& send_channel(int rank);
  sim::Resource& recv_channel(int rank);

  /// Overlapped (DMA) transfer entry; called by Endpoint::isend.  Eager
  /// protocol pipelines immediately; rendezvous first runs the RTS/CTS
  /// handshake against the receiver's posted-receive table.
  void start_transfer(Message m, const std::shared_ptr<SendHandle>& handle);
  /// The data pipeline itself (post-handshake under rendezvous).
  void start_pipeline(Message m, const std::shared_ptr<SendHandle>& handle);
  /// Rendezvous: receiver granted the transfer; CTS travels back, then the
  /// pipeline runs.  Called by Endpoint when a matching irecv is posted.
  void clear_to_send(Message m, std::shared_ptr<SendHandle> handle);
  /// Blocking-path delivery; called by Endpoint::post_blocking.
  void start_blocking_transfer(Message m);

  sim::Engine engine_;
  std::shared_ptr<const mach::Model> model_;
  mach::MachineParams params_;  // = model_->params(), cached for callers
  mach::OverlapLevel level_;
  Network network_;
  Protocol protocol_;
  obs::Sink* sink_;
  std::vector<NodeState> nodes_;
  std::unique_ptr<sim::Resource> bus_;  // kSharedBus only
  i64 messages_ = 0;
  i64 bytes_ = 0;
  i64 inflight_ = 0;
  i64 peak_inflight_ = 0;
  i64 drop_index_ = -1;
  std::map<std::pair<int, int>, i64> traffic_;
  std::set<void*> suspended_;

  void track_sent(int src, int dst, i64 bytes);
  void track_delivered(i64 bytes);
};

}  // namespace tilo::msg
