// One simulated rank's messaging endpoint: nonblocking isend/irecv with
// (source, tag) matching and DMA-pipelined transfers, plus the blocking
// wire path used by the non-overlapping executor.
//
// Cost placement follows the paper's Fig. 4/5 decomposition.  The CPU-bound
// A-stages (A1 fill-MPI-send, A3 fill-MPI-recv) are *not* charged here —
// the executor charges them on the calling processor via Endpoint::cpu(),
// which is what makes the overlap explicit.  The B-stages are charged here:
//   isend:  B3 (kernel copy) + B4 (send-half wire) on the sender's channel,
//   then, after the wire latency,
//           B1 (recv-half wire) + B2 (kernel copy) on the receiver's channel,
// after which the message is "kernel-ready" and a matching irecv completes.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "tilo/msg/message.hpp"
#include "tilo/obs/sink.hpp"
#include "tilo/sim/resource.hpp"
#include "tilo/util/callback.hpp"

namespace tilo::msg {

class Cluster;

/// Handle waiters hold small trivially-copyable continuations (the
/// executors' coroutine resumers), stored inline — no allocation per wait.
using Waiter = util::SmallCallback<40>;

/// Completion state of a nonblocking send.  `done` means the local pipeline
/// (kernel copy + wire send half) finished and the send buffer is free.
struct SendHandle {
  bool done = false;
  Waiter waiter;
  i64 bytes = 0;
};

/// Completion state of a nonblocking receive.  `ready` means the message is
/// in the kernel buffer; the CPU-side A3 copy is still the caller's to pay.
struct RecvHandle {
  bool ready = false;
  Waiter waiter;
  int src = -1;
  i64 tag = 0;
  Payload payload;
  i64 bytes = 0;
};

/// The per-rank endpoint.  Created and owned by Cluster.
class Endpoint {
 public:
  Endpoint(Cluster& cluster, int rank);
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  int rank() const { return rank_; }

  /// Occupies the CPU for `dt`, reports `phase` to the cluster's sink,
  /// then runs `fn`.  The executor's building block for A1/A2/A3 costs.
  /// The callable goes straight into the engine's pooled event store.
  template <typename F>
  void cpu(sim::Time dt, obs::Phase phase, F&& fn,
           std::string_view label = {}) {
    cpu_record(dt, phase, label);
    engine().after(dt, std::forward<F>(fn));
  }

  /// Nonblocking send (MPI_Isend).  The caller must charge A1 via cpu()
  /// first.  Requires a DMA-capable overlap level.
  std::shared_ptr<SendHandle> isend(int dst, i64 tag, i64 bytes,
                                    Payload payload = {});

  /// Nonblocking receive (MPI_Irecv): posts the buffer; matches by
  /// (src, tag), FIFO within a key.  Matches an already-arrived message
  /// immediately (the paper's "underlying layers receive the message before
  /// the actual issue of the receive call").
  std::shared_ptr<RecvHandle> irecv(int src, i64 tag);

  /// Runs `fn` when the send pipeline completes (immediately if done).
  static void when_done(const std::shared_ptr<SendHandle>& h, Waiter fn);
  /// Runs `fn` when the message is kernel-ready (immediately if ready).
  static void when_ready(const std::shared_ptr<RecvHandle>& h, Waiter fn);

  /// Blocking-path transfer: the caller has already charged the whole send
  /// side (A1 + B3 + B4) on its CPU; this just delivers the message after
  /// the wire latency.  The receiver charges B1 + B2 + A3 on its own CPU
  /// when it picks the message up (non-overlapping semantics, Fig. 7).
  void post_blocking(int dst, i64 tag, i64 bytes, Payload payload = {});

 private:
  friend class Cluster;

  /// Sink reporting + validation half of cpu(); out of line so the
  /// template above does not need the Cluster definition.
  void cpu_record(sim::Time dt, obs::Phase phase, std::string_view label);
  sim::Engine& engine() const;

  /// Called by Cluster when a message addressed to this rank becomes
  /// kernel-ready.
  void deliver(Message m);

  /// Rendezvous protocol: a request-to-send reached this rank.  Grants a
  /// clear-to-send immediately when an ungranted matching receive is
  /// posted; otherwise parks the request until irecv.
  void rts_arrived(Message m, std::shared_ptr<SendHandle> handle);

  Cluster* cluster_;
  int rank_;

  using Key = std::pair<int, i64>;  // (src, tag)
  std::map<Key, std::deque<Message>> arrived_;
  std::map<Key, std::deque<std::shared_ptr<RecvHandle>>> posted_;
  // Rendezvous bookkeeping: parked senders and not-yet-granted receives.
  std::map<Key, std::deque<std::pair<Message, std::shared_ptr<SendHandle>>>>
      rts_pending_;
  std::map<Key, int> ungranted_posted_;
};

}  // namespace tilo::msg
