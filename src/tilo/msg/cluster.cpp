#include "tilo/msg/cluster.hpp"

#include <algorithm>

#include "tilo/util/error.hpp"

namespace tilo::msg {

Cluster::Cluster(int num_nodes, const mach::MachineParams& params,
                 mach::OverlapLevel level, Network network,
                 obs::Sink* sink, Protocol protocol)
    : Cluster(num_nodes,
              std::make_shared<mach::IdealOverlapModel>(params), level,
              network, sink, protocol) {}

Cluster::Cluster(int num_nodes, std::shared_ptr<const mach::Model> model,
                 mach::OverlapLevel level, Network network,
                 obs::Sink* sink, Protocol protocol)
    : model_(std::move(model)), params_(model_->params()), level_(level),
      network_(network), protocol_(protocol), sink_(sink) {
  engine_.set_sink(sink_);
  TILO_REQUIRE(num_nodes >= 1, "cluster needs at least one node");
  nodes_.resize(static_cast<std::size_t>(num_nodes));
  for (int r = 0; r < num_nodes; ++r) {
    auto& st = nodes_[static_cast<std::size_t>(r)];
    st.endpoint = std::make_unique<Endpoint>(*this, r);
    st.channel[0] = std::make_unique<sim::Resource>(
        engine_, util::concat("node", r, ".dma0"));
    if (level == mach::OverlapLevel::kDuplexDma) {
      st.channel[1] = std::make_unique<sim::Resource>(
          engine_, util::concat("node", r, ".dma1"));
    }
  }
  if (network_ == Network::kSharedBus)
    bus_ = std::make_unique<sim::Resource>(engine_, "bus");
}

Endpoint& Cluster::node(int rank) {
  TILO_REQUIRE(rank >= 0 && rank < num_nodes(), "rank ", rank,
               " out of range [0, ", num_nodes(), ")");
  return *nodes_[static_cast<std::size_t>(rank)].endpoint;
}

sim::Time Cluster::run() {
  engine_.run();
  return engine_.now();
}

sim::Time Cluster::fill_mpi_ns(i64 bytes) const {
  return sim::from_seconds(model_->fill_mpi_seconds(bytes));
}

sim::Time Cluster::fill_kernel_ns(i64 bytes) const {
  return sim::from_seconds(model_->fill_kernel_seconds(bytes));
}

sim::Time Cluster::half_wire_ns(i64 bytes, int src, int dst) const {
  return sim::from_seconds(model_->half_wire_seconds(bytes, src, dst));
}

sim::Time Cluster::latency_ns(int src, int dst) const {
  return sim::from_seconds(model_->wire_latency_seconds(src, dst));
}

sim::Time Cluster::compute_ns(i64 iterations, i64 working_set_bytes) const {
  TILO_REQUIRE(iterations >= 0, "negative iteration count");
  return sim::from_seconds(
      model_->compute_seconds(iterations, working_set_bytes));
}

sim::Time Cluster::send_interference_ns(i64 bytes) const {
  return sim::from_seconds(model_->send_interference_seconds(bytes));
}

sim::Time Cluster::recv_interference_ns(i64 bytes) const {
  return sim::from_seconds(model_->recv_interference_seconds(bytes));
}

sim::Resource& Cluster::send_channel(int rank) {
  return *nodes_[static_cast<std::size_t>(rank)].channel[0];
}

sim::Resource& Cluster::recv_channel(int rank) {
  auto& st = nodes_[static_cast<std::size_t>(rank)];
  // kDma shares one channel for both directions; kDuplexDma splits them.
  return st.channel[1] ? *st.channel[1] : *st.channel[0];
}

void Cluster::track_sent(int src, int dst, i64 bytes) {
  ++messages_;
  bytes_ += bytes;
  inflight_ += bytes;
  peak_inflight_ = std::max(peak_inflight_, inflight_);
  traffic_[{src, dst}] += bytes;
}

void Cluster::track_delivered(i64 bytes) {
  inflight_ -= bytes;
  TILO_ASSERT(inflight_ >= 0, "in-flight byte accounting went negative");
}

void Cluster::start_transfer(Message m,
                             const std::shared_ptr<SendHandle>& handle) {
  const i64 index = messages_;
  track_sent(m.src, m.dst, m.bytes);
  if (index == drop_index_) {
    // Lost on the wire: the local send "succeeds", nothing arrives.
    handle->done = true;
    if (handle->waiter) {
      auto w = std::move(handle->waiter);
      handle->waiter = nullptr;
      w();
    }
    track_delivered(m.bytes);
    return;
  }
  if (protocol_ == Protocol::kRendezvous) {
    // Request-to-send travels to the receiver; the data pipeline starts
    // only once a matching receive is posted (clear_to_send).
    const int dst = m.dst;
    const sim::Time rts = latency_ns(m.src, m.dst);
    engine_.after(rts, [this, dst, handle, m = std::move(m)]() mutable {
      nodes_[static_cast<std::size_t>(dst)].endpoint->rts_arrived(
          std::move(m), handle);
    });
    return;
  }
  start_pipeline(std::move(m), handle);
}

void Cluster::clear_to_send(Message m, std::shared_ptr<SendHandle> handle) {
  // CTS travels back to the sender, then the data ships.
  const sim::Time cts = latency_ns(m.dst, m.src);
  engine_.after(cts, [this, handle = std::move(handle),
                      m = std::move(m)]() mutable {
    start_pipeline(std::move(m), handle);
  });
}

void Cluster::start_pipeline(Message m,
                             const std::shared_ptr<SendHandle>& handle) {
  const int src = m.src;
  const int dst = m.dst;
  const sim::Time b3 = fill_kernel_ns(m.bytes);
  const sim::Time b4 = half_wire_ns(m.bytes, src, dst);
  const sim::Time b1 = b4;
  const sim::Time b2 = fill_kernel_ns(m.bytes);
  const sim::Time lat = latency_ns(src, dst);

  auto recv_leg = [this, dst, b1, b2](Message msg, sim::Time earliest) {
    auto grant = recv_channel(dst).acquire(
        earliest, b1 + b2,
        [this, dst, msg = std::move(msg)]() mutable {
          nodes_[static_cast<std::size_t>(dst)].endpoint->deliver(
              std::move(msg));
        });
    if (sink_) {
      sink_->span(dst, obs::Phase::kWire, grant.start, grant.start + b1);
      sink_->span(dst, obs::Phase::kKernelRecv, grant.start + b1,
                  grant.completion);
    }
  };

  if (network_ == Network::kSwitched) {
    // Sender channel: kernel copy + send half of the wire time; then the
    // receiver channel picks up after the propagation latency.
    auto grant = send_channel(src).acquire(
        engine_.now(), b3 + b4,
        [this, handle, recv_leg, lat, m = std::move(m)]() mutable {
          handle->done = true;
          if (handle->waiter) {
            auto w = std::move(handle->waiter);
            handle->waiter = nullptr;
            w();
          }
          recv_leg(std::move(m), engine_.now() + lat);
        });
    if (sink_) {
      sink_->span(src, obs::Phase::kKernelSend, grant.start,
                  grant.start + b3);
      sink_->span(src, obs::Phase::kWire, grant.start + b3,
                  grant.completion);
    }
  } else {
    // Shared bus: the kernel copy runs on the sender channel, then the
    // whole frame occupies the single bus, then the receiver kernel copy.
    (void)recv_leg;  // switched-network path only
    auto grant = send_channel(src).acquire(
        engine_.now(), b3,
        [this, handle, b4, b1, b2, lat, src, dst, m = std::move(m)]() mutable {
          auto bus_grant = bus_->acquire(
              engine_.now(), b4 + b1,
              [this, handle, b2, lat, dst, m = std::move(m)]() mutable {
                handle->done = true;
                if (handle->waiter) {
                  auto w = std::move(handle->waiter);
                  handle->waiter = nullptr;
                  w();
                }
                // Only the kernel copy remains on the receiver channel.
                auto grant2 = recv_channel(dst).acquire(
                    engine_.now() + lat, b2,
                    [this, dst, m = std::move(m)]() mutable {
                      nodes_[static_cast<std::size_t>(dst)]
                          .endpoint->deliver(std::move(m));
                    });
                if (sink_)
                  sink_->span(dst, obs::Phase::kKernelRecv, grant2.start,
                              grant2.completion);
              });
          if (sink_)
            sink_->span(src, obs::Phase::kWire, bus_grant.start,
                        bus_grant.completion);
        });
    if (sink_)
      sink_->span(src, obs::Phase::kKernelSend, grant.start,
                  grant.completion);
  }
}

void Cluster::start_blocking_transfer(Message m) {
  const i64 index = messages_;
  track_sent(m.src, m.dst, m.bytes);
  if (index == drop_index_) {
    track_delivered(m.bytes);
    return;  // lost on the wire
  }
  const int dst = m.dst;
  const sim::Time lat = latency_ns(m.src, m.dst);
  engine_.after(lat, [this, dst, m = std::move(m)]() mutable {
    nodes_[static_cast<std::size_t>(dst)].endpoint->deliver(std::move(m));
  });
}

}  // namespace tilo::msg
