// Messages exchanged between simulated ranks.
#pragma once

#include <memory>
#include <vector>

#include "tilo/lattice/box.hpp"
#include "tilo/sim/engine.hpp"

namespace tilo::msg {

using util::i64;

/// Optional functional payload: region values concatenated in the sender's
/// region order (the receiver reconstructs the region list from the tag, so
/// no geometry travels with the message).  Timed runs leave `data` null and
/// only the byte count matters.
struct Payload {
  std::shared_ptr<const std::vector<double>> data;

  bool has_data() const { return data != nullptr; }
};

/// A message in flight.
struct Message {
  int src = -1;
  int dst = -1;
  i64 tag = 0;
  i64 bytes = 0;
  Payload payload;
};

}  // namespace tilo::msg
