#include "tilo/msg/endpoint.hpp"

#include "tilo/msg/cluster.hpp"
#include "tilo/util/error.hpp"

namespace tilo::msg {

Endpoint::Endpoint(Cluster& cluster, int rank)
    : cluster_(&cluster), rank_(rank) {}

void Endpoint::cpu_record(sim::Time dt, obs::Phase phase,
                          std::string_view label) {
  TILO_REQUIRE(dt >= 0, "negative CPU time");
  if (obs::Sink* sink = cluster_->sink()) {
    const sim::Time now = cluster_->engine().now();
    sink->span(rank_, phase, now, now + dt, label);
  }
}

sim::Engine& Endpoint::engine() const { return cluster_->engine(); }

std::shared_ptr<SendHandle> Endpoint::isend(int dst, i64 tag, i64 bytes,
                                            Payload payload) {
  TILO_REQUIRE(cluster_->level() != mach::OverlapLevel::kNone,
               "isend needs a DMA-capable overlap level; use the blocking "
               "path for OverlapLevel::kNone");
  TILO_REQUIRE(dst >= 0 && dst < cluster_->num_nodes(), "bad destination ",
               dst);
  TILO_REQUIRE(dst != rank_, "self-send is not supported");
  TILO_REQUIRE(bytes >= 0, "negative message size");
  auto handle = std::make_shared<SendHandle>();
  handle->bytes = bytes;
  cluster_->start_transfer(
      Message{rank_, dst, tag, bytes, std::move(payload)}, handle);
  return handle;
}

std::shared_ptr<RecvHandle> Endpoint::irecv(int src, i64 tag) {
  TILO_REQUIRE(src >= 0 && src < cluster_->num_nodes(), "bad source ", src);
  TILO_REQUIRE(src != rank_, "self-receive is not supported");
  auto handle = std::make_shared<RecvHandle>();
  handle->src = src;
  handle->tag = tag;

  const Key key{src, tag};
  auto it = arrived_.find(key);
  if (it != arrived_.end() && !it->second.empty()) {
    Message m = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) arrived_.erase(it);
    handle->ready = true;
    handle->payload = std::move(m.payload);
    handle->bytes = m.bytes;
    return handle;
  }
  posted_[key].push_back(handle);
  if (cluster_->protocol() == Protocol::kRendezvous) {
    auto rts = rts_pending_.find(key);
    if (rts != rts_pending_.end() && !rts->second.empty()) {
      // A sender is parked on this key: grant its clear-to-send now.
      auto [message, sender] = std::move(rts->second.front());
      rts->second.pop_front();
      if (rts->second.empty()) rts_pending_.erase(rts);
      cluster_->clear_to_send(std::move(message), std::move(sender));
    } else {
      ++ungranted_posted_[key];
    }
  }
  return handle;
}

void Endpoint::rts_arrived(Message m, std::shared_ptr<SendHandle> handle) {
  const Key key{m.src, m.tag};
  auto it = ungranted_posted_.find(key);
  if (it != ungranted_posted_.end() && it->second > 0) {
    if (--it->second == 0) ungranted_posted_.erase(it);
    cluster_->clear_to_send(std::move(m), std::move(handle));
    return;
  }
  rts_pending_[key].emplace_back(std::move(m), std::move(handle));
}

void Endpoint::when_done(const std::shared_ptr<SendHandle>& h, Waiter fn) {
  TILO_REQUIRE(h != nullptr, "null send handle");
  if (h->done) {
    fn();
    return;
  }
  TILO_REQUIRE(!h->waiter, "send handle already has a waiter");
  h->waiter = std::move(fn);
}

void Endpoint::when_ready(const std::shared_ptr<RecvHandle>& h, Waiter fn) {
  TILO_REQUIRE(h != nullptr, "null recv handle");
  if (h->ready) {
    fn();
    return;
  }
  TILO_REQUIRE(!h->waiter, "recv handle already has a waiter");
  h->waiter = std::move(fn);
}

void Endpoint::post_blocking(int dst, i64 tag, i64 bytes, Payload payload) {
  TILO_REQUIRE(dst >= 0 && dst < cluster_->num_nodes(), "bad destination ",
               dst);
  TILO_REQUIRE(dst != rank_, "self-send is not supported");
  TILO_REQUIRE(bytes >= 0, "negative message size");
  cluster_->start_blocking_transfer(
      Message{rank_, dst, tag, bytes, std::move(payload)});
}

void Endpoint::deliver(Message m) {
  cluster_->track_delivered(m.bytes);
  const Key key{m.src, m.tag};
  auto it = posted_.find(key);
  if (it != posted_.end() && !it->second.empty()) {
    std::shared_ptr<RecvHandle> h = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) posted_.erase(it);
    h->ready = true;
    h->payload = std::move(m.payload);
    h->bytes = m.bytes;
    if (h->waiter) {
      auto w = std::move(h->waiter);
      h->waiter = nullptr;
      w();
    }
    return;
  }
  arrived_[key].push_back(std::move(m));
}

}  // namespace tilo::msg
