#include "tilo/obs/chrome_trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <ostream>
#include <set>

#include "tilo/obs/json.hpp"

namespace tilo::obs {

namespace {

/// Prints a nanosecond count as a microsecond value with ns precision
/// ("1234.567"), exactly — no double rounding at large timestamps.
std::string us_from_ns(Time ns) {
  const bool neg = ns < 0;
  const std::uint64_t v =
      neg ? static_cast<std::uint64_t>(-ns) : static_cast<std::uint64_t>(ns);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%" PRIu64 ".%03" PRIu64,
                neg ? "-" : "", v / 1000, v % 1000);
  return buf;
}

}  // namespace

void ChromeTraceSink::span(int node, Phase phase, Time start, Time end,
                           std::string_view label) {
  if (end <= start) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      Event{false, node, phase, start, end, std::string(label)});
}

void ChromeTraceSink::host_span(std::string_view name, Time start_ns,
                                Time end_ns, int lane) {
  if (end_ns <= start_ns) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{true, lane, Phase::kCompute, start_ns, end_ns,
                          std::string(name)});
}

void ChromeTraceSink::counter(std::string_view name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[std::string(name)] += delta;
}

std::size_t ChromeTraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void ChromeTraceSink::write(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);

  Time host_epoch = std::numeric_limits<Time>::max();
  std::set<std::pair<int, int>> lanes;  // (pid, tid)
  for (const Event& e : events_) {
    if (e.host) host_epoch = std::min(host_epoch, e.start);
    lanes.emplace(e.host ? 1 : 0, e.lane);
  }

  os << "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  sep();
  os << R"({"ph":"M","pid":0,"name":"process_name","args":{"name":"sim"}})";
  sep();
  os << R"({"ph":"M","pid":1,"name":"process_name","args":{"name":"host"}})";
  for (const auto& [pid, tid] : lanes) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << (pid == 0 ? "rank " : "worker ") << tid << "\"}}";
  }

  for (const Event& e : events_) {
    const Time base = e.host ? host_epoch : 0;
    sep();
    os << "{\"ph\":\"X\",\"pid\":" << (e.host ? 1 : 0)
       << ",\"tid\":" << e.lane << ",\"name\":\""
       << json_escape(e.host ? e.name : phase_name(e.phase))
       << "\",\"cat\":\""
       << (e.host ? "host" : phase_paper_term(e.phase))
       << "\",\"ts\":" << us_from_ns(e.start - base)
       << ",\"dur\":" << us_from_ns(e.end - e.start);
    if (!e.host && !e.name.empty())
      os << ",\"args\":{\"label\":\"" << json_escape(e.name) << "\"}";
    os << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ns\"";

  if (!counters_.empty()) {
    os << ",\"otherData\":{";
    bool f = true;
    for (const auto& [name, value] : counters_) {
      if (!f) os << ',';
      f = false;
      os << '"' << json_escape(name) << "\":" << json_number(value);
    }
    os << '}';
  }
  os << "}\n";
}

}  // namespace tilo::obs
