#include "tilo/obs/phase.hpp"

#include "tilo/util/error.hpp"

namespace tilo::obs {

char phase_code(Phase p) {
  switch (p) {
    case Phase::kCompute:
      return 'C';
    case Phase::kFillMpiSend:
      return 's';
    case Phase::kFillMpiRecv:
      return 'r';
    case Phase::kKernelSend:
      return 'k';
    case Phase::kKernelRecv:
      return 'q';
    case Phase::kWire:
      return 'w';
    case Phase::kBlocked:
      return '.';
  }
  TILO_ASSERT(false, "unknown Phase");
  return '?';
}

std::string phase_name(Phase p) {
  switch (p) {
    case Phase::kCompute:
      return "compute";
    case Phase::kFillMpiSend:
      return "fill-mpi-send";
    case Phase::kFillMpiRecv:
      return "fill-mpi-recv";
    case Phase::kKernelSend:
      return "kernel-copy-send";
    case Phase::kKernelRecv:
      return "kernel-copy-recv";
    case Phase::kWire:
      return "wire";
    case Phase::kBlocked:
      return "blocked";
  }
  TILO_ASSERT(false, "unknown Phase");
  return {};
}

const char* phase_paper_term(Phase p) {
  switch (p) {
    case Phase::kCompute:
      return "A2";
    case Phase::kFillMpiSend:
      return "A1";
    case Phase::kFillMpiRecv:
      return "A3";
    case Phase::kKernelSend:
      return "B3";
    case Phase::kKernelRecv:
      return "B2";
    case Phase::kWire:
      return "B1-B4";
    case Phase::kBlocked:
      return "-";
  }
  TILO_ASSERT(false, "unknown Phase");
  return "?";
}

bool is_cpu_phase(Phase p) {
  return p == Phase::kCompute || p == Phase::kFillMpiSend ||
         p == Phase::kFillMpiRecv;
}

bool is_comm_phase(Phase p) {
  return p == Phase::kKernelSend || p == Phase::kKernelRecv ||
         p == Phase::kWire;
}

}  // namespace tilo::obs
