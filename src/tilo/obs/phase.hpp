// The phase vocabulary of the paper's cost decomposition (Figs. 4/5,
// eqs. (3)/(4)): what a simulated processor, its DMA engine or the wire is
// doing during an interval.  Lives in obs so every layer — the simulator,
// the executors and the observability sinks — shares one enum without
// depending on the trace library.
//
// Paper-term mapping (DESIGN.md §"Observability"):
//   kFillMpiSend = A1   CPU copies user data into the MPI send buffer
//   kCompute     = A2   tile computation
//   kFillMpiRecv = A3   CPU drains the kernel buffer into user space
//   kWire        = B1/B4  wire transmission (recv half / send half)
//   kKernelRecv  = B2   kernel/DMA copy on the receive side
//   kKernelSend  = B3   kernel/DMA copy on the send side
//   kBlocked     = —    CPU idle on a blocking wait (neither A nor B)
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace tilo::obs {

/// What a processor (or its DMA/NIC) is doing during an interval.
enum class Phase {
  kCompute,       ///< tile computation (A2)
  kFillMpiSend,   ///< CPU filling the MPI send buffer (A1)
  kFillMpiRecv,   ///< CPU draining the kernel buffer into user space (A3)
  kKernelSend,    ///< kernel/DMA copy on the send side (B3)
  kKernelRecv,    ///< kernel/DMA copy on the receive side (B2)
  kWire,          ///< wire transmission (B4 / B1)
  kBlocked,       ///< CPU idle, waiting on a blocking call
};

inline constexpr std::size_t kNumPhases = 7;

/// All phases, in reporting order.
inline constexpr std::array<Phase, kNumPhases> kAllPhases = {
    Phase::kCompute,    Phase::kFillMpiSend, Phase::kFillMpiRecv,
    Phase::kKernelSend, Phase::kKernelRecv,  Phase::kWire,
    Phase::kBlocked};

/// Single-character code used by the Gantt renderer.
char phase_code(Phase p);
std::string phase_name(Phase p);

/// The paper's name for the phase: "A1".."A3" (CPU stages of eq. (3)),
/// "B1-B4"/"B2"/"B3" (DMA/wire stages of eq. (4)), "-" for kBlocked.
const char* phase_paper_term(Phase p);

/// A-side (CPU-occupying) phase of the paper's decomposition: A1, A2, A3.
bool is_cpu_phase(Phase p);
/// B-side (DMA/wire) phase: B1..B4.
bool is_comm_phase(Phase p);

}  // namespace tilo::obs
