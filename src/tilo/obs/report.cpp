#include "tilo/obs/report.hpp"

#include <algorithm>
#include <ostream>

#include "tilo/obs/json.hpp"
#include "tilo/util/csv.hpp"
#include "tilo/util/error.hpp"

namespace tilo::obs {

Time RankBreakdown::cpu_ns() const {
  Time acc = 0;
  for (const Phase p : kAllPhases)
    if (is_cpu_phase(p)) acc += time(p);
  return acc;
}

Time RankBreakdown::comm_ns() const {
  Time acc = 0;
  for (const Phase p : kAllPhases)
    if (is_comm_phase(p)) acc += time(p);
  return acc;
}

Time RankBreakdown::blocked_ns() const { return time(Phase::kBlocked); }

Time RankBreakdown::bound_ns() const {
  return std::max(cpu_ns(), comm_ns());
}

void ReportSink::span(int node, Phase phase, Time start, Time end,
                      std::string_view /*label*/) {
  TILO_REQUIRE(node >= 0, "negative node id");
  if (end <= start) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<std::size_t>(node) >= ranks_.size()) {
    const std::size_t old = ranks_.size();
    ranks_.resize(static_cast<std::size_t>(node) + 1);
    for (std::size_t i = old; i < ranks_.size(); ++i)
      ranks_[i].node = static_cast<int>(i);
  }
  RankBreakdown& r = ranks_[static_cast<std::size_t>(node)];
  r.phase_ns[static_cast<std::size_t>(phase)] += end - start;
  r.end_ns = std::max(r.end_ns, end);
}

void ReportSink::counter(std::string_view name, double delta) {
  if (name == "dag.alap_lower_bound_ns") {
    std::lock_guard<std::mutex> lock(mu_);
    alap_lower_bound_ns_ = static_cast<Time>(delta);
    return;
  }
  if (name.substr(0, 6) == "sched.") {
    std::lock_guard<std::mutex> lock(mu_);
    sched_counters_[std::string(name.substr(6))] += delta;
  }
}

void ReportSink::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ranks_.clear();
  alap_lower_bound_ns_ = 0;
  sched_counters_.clear();
}

RunReport ReportSink::report() const {
  RunReport rep;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rep.ranks = ranks_;
    rep.alap_lower_bound_ns = alap_lower_bound_ns_;
    rep.sched_counters = sched_counters_;
  }
  if (rep.ranks.empty()) return rep;

  for (const RankBreakdown& r : rep.ranks) {
    rep.makespan = std::max(rep.makespan, r.end_ns);
    rep.total_cpu_ns += r.cpu_ns();
    rep.total_comm_ns += r.comm_ns();
    if (r.bound_ns() > rep.critical_bound_ns) {
      rep.critical_bound_ns = r.bound_ns();
      rep.critical_rank = r.node;
    }
  }
  if (rep.makespan > 0 && rep.critical_bound_ns > 0) {
    rep.critical_path_share = static_cast<double>(rep.critical_bound_ns) /
                              static_cast<double>(rep.makespan);
    rep.overlap_efficiency = static_cast<double>(rep.makespan) /
                             static_cast<double>(rep.critical_bound_ns);
  }

  double acc = 0.0;
  rep.min_compute_utilization = 1.0;
  for (const RankBreakdown& r : rep.ranks) {
    const double u =
        rep.makespan > 0
            ? static_cast<double>(r.time(Phase::kCompute)) /
                  static_cast<double>(rep.makespan)
            : 0.0;
    acc += u;
    rep.min_compute_utilization = std::min(rep.min_compute_utilization, u);
    rep.max_compute_utilization = std::max(rep.max_compute_utilization, u);
  }
  rep.mean_compute_utilization = acc / static_cast<double>(rep.ranks.size());
  if (rep.alap_lower_bound_ns > 0 && rep.makespan > 0)
    rep.alap_bound_ratio = static_cast<double>(rep.makespan) /
                           static_cast<double>(rep.alap_lower_bound_ns);
  return rep;
}

void RunReport::write_table(std::ostream& os) const {
  util::Table t;
  std::vector<std::string> header{"rank"};
  for (const Phase p : kAllPhases)
    header.push_back(phase_name(p) + " (" + phase_paper_term(p) + ")");
  header.insert(header.end(), {"sum A", "sum B", "util %"});
  t.set_header(header);
  for (const RankBreakdown& r : ranks) {
    std::vector<std::string> row{std::to_string(r.node)};
    for (const Phase p : kAllPhases)
      row.push_back(util::fmt_seconds(1e-9 * static_cast<double>(r.time(p))));
    row.push_back(util::fmt_seconds(1e-9 * static_cast<double>(r.cpu_ns())));
    row.push_back(util::fmt_seconds(1e-9 * static_cast<double>(r.comm_ns())));
    row.push_back(util::fmt_fixed(
        makespan > 0 ? 100.0 * static_cast<double>(r.time(Phase::kCompute)) /
                           static_cast<double>(makespan)
                     : 0.0,
        1));
    t.add_row(row);
  }
  t.write_text(os);
  os << "makespan " << util::fmt_seconds(1e-9 * static_cast<double>(makespan))
     << ", critical rank " << critical_rank << " (bound "
     << util::fmt_seconds(1e-9 * static_cast<double>(critical_bound_ns))
     << ", share " << util::fmt_fixed(100.0 * critical_path_share, 1)
     << " %), overlap efficiency "
     << util::fmt_fixed(overlap_efficiency, 3) << " (1.0 = perfect)\n";
  if (alap_lower_bound_ns > 0)
    os << "ALAP lower bound "
       << util::fmt_seconds(1e-9 * static_cast<double>(alap_lower_bound_ns))
       << ", achieved/bound " << util::fmt_fixed(alap_bound_ratio, 3)
       << " (1.0 = optimal, < 1.0 = bound violated)\n";
  if (!sched_counters.empty()) {
    os << "scheduler";
    bool first = true;
    for (const auto& [name, value] : sched_counters) {
      os << (first ? " " : ", ") << name << " "
         << static_cast<long long>(value);
      first = false;
    }
    os << '\n';
  }
}

void RunReport::write_json(std::ostream& os) const {
  os << "{\"makespan_ns\":" << makespan
     << ",\"total_cpu_ns\":" << total_cpu_ns
     << ",\"total_comm_ns\":" << total_comm_ns
     << ",\"critical_rank\":" << critical_rank
     << ",\"critical_bound_ns\":" << critical_bound_ns
     << ",\"critical_path_share\":" << json_number(critical_path_share)
     << ",\"overlap_efficiency\":" << json_number(overlap_efficiency)
     << ",\"mean_compute_utilization\":"
     << json_number(mean_compute_utilization)
     << ",\"min_compute_utilization\":"
     << json_number(min_compute_utilization)
     << ",\"max_compute_utilization\":"
     << json_number(max_compute_utilization);
  if (alap_lower_bound_ns > 0)
    os << ",\"alap_lower_bound_ns\":" << alap_lower_bound_ns
       << ",\"alap_bound_ratio\":" << json_number(alap_bound_ratio);
  if (!sched_counters.empty()) {
    os << ",\"sched\":{";
    bool first = true;
    for (const auto& [name, value] : sched_counters) {
      if (!first) os << ',';
      first = false;
      os << '"' << name << "\":" << json_number(value);
    }
    os << '}';
  }
  os << ",\"ranks\":[";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const RankBreakdown& r = ranks[i];
    if (i) os << ',';
    os << "{\"rank\":" << r.node;
    for (const Phase p : kAllPhases)
      os << ",\"" << phase_name(p) << "_ns\":" << r.time(p);
    os << ",\"cpu_ns\":" << r.cpu_ns() << ",\"comm_ns\":" << r.comm_ns()
       << ",\"end_ns\":" << r.end_ns << '}';
  }
  os << "]}";
}

}  // namespace tilo::obs
