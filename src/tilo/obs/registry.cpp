#include "tilo/obs/registry.hpp"

#include <algorithm>
#include <bit>

namespace tilo::obs {

int LogHistogram::bucket_of(Time dt) {
  if (dt <= 1) return 0;
  // dt in (2^(i-1), 2^i]  <=>  i = bit_width(dt - 1).
  const int i = std::bit_width(static_cast<std::uint64_t>(dt - 1));
  return i < kBuckets ? i : kBuckets - 1;
}

Time LogHistogram::bucket_hi(int i) {
  if (i >= kBuckets - 1 || i >= 62) return Time{1} << 62;
  return Time{1} << i;
}

Time LogHistogram::bucket_lo(int i) { return i == 0 ? -1 : bucket_hi(i - 1); }

std::uint64_t LogHistogram::total_count() const {
  std::uint64_t n = 0;
  for (int i = 0; i < kBuckets; ++i) n += count(i);
  return n;
}

void Registry::span(int /*node*/, Phase phase, Time start, Time end,
                    std::string_view /*label*/) {
  phases_[static_cast<std::size_t>(phase)].add(end - start);
}

void Registry::host_span(std::string_view /*name*/, Time start_ns,
                         Time end_ns, int /*lane*/) {
  host_.add(end_ns - start_ns);
}

std::atomic<double>& Registry::cell(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, c] : named_)
    if (n == name) return *c;
  named_.emplace_back(std::string(name),
                      std::make_unique<std::atomic<double>>(0.0));
  return *named_.back().second;
}

void Registry::counter(std::string_view name, double delta) {
  std::atomic<double>& c = cell(name);
  double cur = c.load(std::memory_order_relaxed);
  while (!c.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

double Registry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, c] : named_)
    if (n == name) return c->load(std::memory_order_relaxed);
  return 0.0;
}

std::vector<std::pair<std::string, double>> Registry::counters() const {
  std::vector<std::pair<std::string, double>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(named_.size());
    for (const auto& [n, c] : named_)
      out.emplace_back(n, c->load(std::memory_order_relaxed));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tilo::obs
