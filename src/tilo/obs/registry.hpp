// Typed counters and per-phase duration histograms.
//
// The Registry is the always-cheap aggregating sink: a span lands as two
// relaxed atomic increments (a fixed log-bucket histogram cell and the
// phase's running sum), a counter as one CAS loop on a pre-registered
// cell.  Nothing on the span path allocates or locks, so a Registry can be
// shared across every worker of a parallel sweep.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "tilo/obs/sink.hpp"

namespace tilo::obs {

/// Fixed power-of-two log-bucket histogram over nanosecond durations.
/// Bucket 0 holds [0, 1] ns and bucket i >= 1 holds (2^(i-1), 2^i] ns;
/// the last bucket additionally absorbs everything beyond its upper edge
/// (2^62 ns is ~146 years of simulated time, so nothing real overflows).
class LogHistogram {
 public:
  static constexpr int kBuckets = 40;

  /// The bucket index `dt` falls into (negative durations clamp to 0).
  static int bucket_of(Time dt);
  /// Inclusive upper edge of bucket `i` (2^i ns, saturated at the top).
  static Time bucket_hi(int i);
  /// Exclusive lower edge of bucket `i` (bucket_hi(i - 1); -1 for i == 0).
  static Time bucket_lo(int i);

  void add(Time dt) {
    counts_[static_cast<std::size_t>(bucket_of(dt))].fetch_add(
        1, std::memory_order_relaxed);
    sum_ns_.fetch_add(dt > 0 ? dt : 0, std::memory_order_relaxed);
  }

  std::uint64_t count(int bucket) const {
    return counts_[static_cast<std::size_t>(bucket)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t total_count() const;
  /// Sum of all recorded durations (clamped at 0 per sample), in ns.
  Time sum_ns() const { return sum_ns_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<Time> sum_ns_{0};
};

/// The aggregating sink: one histogram per phase plus named counters.
class Registry final : public Sink {
 public:
  void span(int node, Phase phase, Time start, Time end,
            std::string_view label = {}) override;
  void host_span(std::string_view name, Time start_ns, Time end_ns,
                 int lane = 0) override;
  void counter(std::string_view name, double delta) override;

  /// Duration histogram of one simulated phase.
  const LogHistogram& phase_histogram(Phase p) const {
    return phases_[static_cast<std::size_t>(p)];
  }
  /// Duration histogram of host-side orchestration spans (all names pooled).
  const LogHistogram& host_histogram() const { return host_; }

  /// Current value of a named counter (0 if never incremented).
  double counter_value(const std::string& name) const;
  /// All counters, sorted by name.
  std::vector<std::pair<std::string, double>> counters() const;

 private:
  std::array<LogHistogram, kNumPhases> phases_;
  LogHistogram host_;

  // Counters are pre-registered on first touch (the only allocating /
  // locking path); subsequent increments CAS the found cell.
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<std::atomic<double>>>>
      named_;

  std::atomic<double>& cell(std::string_view name);
};

}  // namespace tilo::obs
