#include "tilo/obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace tilo::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace tilo::obs
