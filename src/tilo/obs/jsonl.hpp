// JSON-lines exporter: every event is written immediately as one JSON
// object per line, so a long run can be tailed, grepped and `jq`-ed while
// it executes.  Line shapes:
//   {"type":"span","node":0,"phase":"compute","paper":"A2",
//    "start_ns":0,"end_ns":125,"label":"..."}        (label only if set)
//   {"type":"host_span","name":"sweep.point","lane":2,
//    "start_ns":...,"end_ns":...}
//   {"type":"counter","name":"run.messages","delta":888}
#pragma once

#include <iosfwd>
#include <mutex>

#include "tilo/obs/sink.hpp"

namespace tilo::obs {

class JsonlSink final : public Sink {
 public:
  /// Writes to `os`, which must outlive the sink.  Thread-safe: concurrent
  /// events serialize on an internal mutex, one complete line at a time.
  explicit JsonlSink(std::ostream& os) : os_(&os) {}

  void span(int node, Phase phase, Time start, Time end,
            std::string_view label = {}) override;
  void host_span(std::string_view name, Time start_ns, Time end_ns,
                 int lane = 0) override;
  void counter(std::string_view name, double delta) override;

 private:
  std::mutex mu_;
  std::ostream* os_;
};

}  // namespace tilo::obs
