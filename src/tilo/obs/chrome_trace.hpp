// Chrome-trace exporter: buffers span events and writes the JSON object
// format that chrome://tracing and https://ui.perfetto.dev load directly.
//
// Layout: simulated ranks appear as threads of pid 0 ("sim"), one lane per
// rank; host-side orchestration spans appear as threads of pid 1 ("host"),
// one lane per worker.  `ts`/`dur` are microseconds (the format's fixed
// unit) printed with nanosecond precision, so integer-ns simulated times
// render exactly.  Counters are accumulated and emitted under "otherData".
#pragma once

#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "tilo/obs/sink.hpp"

namespace tilo::obs {

class ChromeTraceSink final : public Sink {
 public:
  void span(int node, Phase phase, Time start, Time end,
            std::string_view label = {}) override;
  void host_span(std::string_view name, Time start_ns, Time end_ns,
                 int lane = 0) override;
  void counter(std::string_view name, double delta) override;

  /// Number of buffered events (spans + host spans).
  std::size_t size() const;

  /// Writes the whole trace as one JSON document.  Host-span timestamps are
  /// rebased to the earliest host span so both pids start near t = 0.
  void write(std::ostream& os) const;

 private:
  struct Event {
    bool host = false;
    int lane = 0;
    Phase phase = Phase::kCompute;
    Time start = 0;
    Time end = 0;
    std::string name;  // host spans: span name; sim spans: label
  };

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::string, double> counters_;
};

}  // namespace tilo::obs
