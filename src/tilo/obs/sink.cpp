#include "tilo/obs/sink.hpp"

namespace tilo::obs {

void Sink::host_span(std::string_view, Time, Time, int) {}
void Sink::counter(std::string_view, double) {}

void MultiSink::span(int node, Phase phase, Time start, Time end,
                     std::string_view label) {
  for (Sink* s : sinks_)
    if (s) s->span(node, phase, start, end, label);
}

void MultiSink::host_span(std::string_view name, Time start_ns, Time end_ns,
                          int lane) {
  for (Sink* s : sinks_)
    if (s) s->host_span(name, start_ns, end_ns, lane);
}

void MultiSink::counter(std::string_view name, double delta) {
  for (Sink* s : sinks_)
    if (s) s->counter(name, delta);
}

}  // namespace tilo::obs
