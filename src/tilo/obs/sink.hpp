// The unified observability interface.  Everything the simulator, the
// executors and the sweep orchestration know how to report flows through
// one abstract Sink:
//
//   span       a simulated-time phase interval on a simulated rank — the
//              hot-path event, emitted by the cluster/endpoint/executors
//              (callers guard every emission with `if (sink)`, so a null
//              sink costs one predictable branch)
//   host_span  a wall-clock orchestration interval (a sweep point, an
//              autotune probe batch) on a worker lane
//   counter    a named monotone counter increment (messages, bytes, events)
//
// Implementations in this library: Registry (counters + per-phase duration
// histograms), ChromeTraceSink (chrome://tracing / Perfetto JSON),
// JsonlSink (one JSON object per event), ReportSink (the paper's A/B phase
// breakdown).  trace::Timeline is a fourth implementation living in the
// trace library.  Sinks observe only: enabling any of them never changes
// the simulation's (time, seq) event order.
//
// Threading: a Sink shared across sweep workers must tolerate concurrent
// calls.  All sinks in this library are thread-safe; Timeline is not (use
// it on single runs, which is all it was ever handed).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "tilo/obs/phase.hpp"

namespace tilo::obs {

/// Time in nanoseconds.  Simulated spans use simulated ns (identical to
/// sim::Time); host spans use wall-clock ns from an arbitrary epoch.
using Time = std::int64_t;

/// The observability interface.  `span` is the hot path and must be
/// implemented; the other events default to no-ops so a sink overrides only
/// what it consumes.
class Sink {
 public:
  virtual ~Sink() = default;

  /// Simulated-time interval [start, end) of `phase` on rank `node`.
  virtual void span(int node, Phase phase, Time start, Time end,
                    std::string_view label = {}) = 0;

  /// Wall-clock orchestration interval; `lane` disambiguates concurrent
  /// emitters (e.g. the sweep worker index).
  virtual void host_span(std::string_view name, Time start_ns, Time end_ns,
                         int lane = 0);

  /// Adds `delta` to the named counter.
  virtual void counter(std::string_view name, double delta);
};

/// Fans every event out to a fixed set of child sinks (non-owning), so one
/// run can feed e.g. a Timeline, a Registry and a Chrome trace at once.
class MultiSink final : public Sink {
 public:
  MultiSink() = default;
  explicit MultiSink(std::vector<Sink*> sinks) : sinks_(std::move(sinks)) {}

  /// Adds a child; null children are ignored at emission time.
  void add(Sink* sink) { sinks_.push_back(sink); }

  void span(int node, Phase phase, Time start, Time end,
            std::string_view label = {}) override;
  void host_span(std::string_view name, Time start_ns, Time end_ns,
                 int lane = 0) override;
  void counter(std::string_view name, double delta) override;

 private:
  std::vector<Sink*> sinks_;
};

}  // namespace tilo::obs
