#include "tilo/obs/jsonl.hpp"

#include <ostream>

#include "tilo/obs/json.hpp"

namespace tilo::obs {

void JsonlSink::span(int node, Phase phase, Time start, Time end,
                     std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  *os_ << "{\"type\":\"span\",\"node\":" << node << ",\"phase\":\""
       << phase_name(phase) << "\",\"paper\":\"" << phase_paper_term(phase)
       << "\",\"start_ns\":" << start << ",\"end_ns\":" << end;
  if (!label.empty()) *os_ << ",\"label\":\"" << json_escape(label) << '"';
  *os_ << "}\n";
}

void JsonlSink::host_span(std::string_view name, Time start_ns, Time end_ns,
                          int lane) {
  std::lock_guard<std::mutex> lock(mu_);
  *os_ << "{\"type\":\"host_span\",\"name\":\"" << json_escape(name)
       << "\",\"lane\":" << lane << ",\"start_ns\":" << start_ns
       << ",\"end_ns\":" << end_ns << "}\n";
}

void JsonlSink::counter(std::string_view name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  *os_ << "{\"type\":\"counter\",\"name\":\"" << json_escape(name)
       << "\",\"delta\":" << json_number(delta) << "}\n";
}

}  // namespace tilo::obs
