// RunReport: a run condensed into the paper's accounting identity.
//
// Eq. (3) charges the whole communication pipeline to the CPU (no overlap);
// eq. (4) splits each step into the CPU-bound A-stages (A1 fill-MPI-send,
// A2 compute, A3 fill-MPI-recv) and the DMA/wire B-stages (B1/B4 wire
// halves, B2/B3 kernel copies) that proceed concurrently.  ReportSink
// accumulates every span into that decomposition per rank; RunReport then
// answers the questions the paper's figures ask:
//   - per-rank utilization (share of the makespan spent in A2),
//   - the overlap lower bound max(sum A, sum B) on the critical rank,
//   - overlap efficiency achieved/max(sum A, sum B)  (1.0 = the schedule
//     hides the cheaper side completely; larger = overlap left on the
//     table).
#pragma once

#include <array>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "tilo/obs/sink.hpp"

namespace tilo::obs {

/// One rank's phase totals.
struct RankBreakdown {
  int node = 0;
  std::array<Time, kNumPhases> phase_ns{};  // indexed by Phase value
  Time end_ns = 0;  ///< latest span end on this rank

  Time time(Phase p) const {
    return phase_ns[static_cast<std::size_t>(p)];
  }
  /// CPU-bound time: A1 + A2 + A3.
  Time cpu_ns() const;
  /// DMA/wire time charged to this rank's lane: B1..B4.
  Time comm_ns() const;
  /// Time parked on a blocking wait.
  Time blocked_ns() const;
  /// Perfect-overlap lower bound for this rank: max(sum A, sum B).
  Time bound_ns() const;
};

/// Whole-run A/B summary.
struct RunReport {
  Time makespan = 0;
  std::vector<RankBreakdown> ranks;

  /// Sums across ranks.
  Time total_cpu_ns = 0;
  Time total_comm_ns = 0;

  /// The rank with the largest perfect-overlap bound, and that bound —
  /// the simulated schedule can never beat it.
  int critical_rank = -1;
  Time critical_bound_ns = 0;
  /// critical_bound / makespan: how much of the completion time is pinned
  /// to the critical rank's own work (1.0 = that rank never waits).
  double critical_path_share = 0.0;

  /// makespan / critical_bound: 1.0 means communication (or computation,
  /// whichever is cheaper) is hidden completely; 2.0 means the run took
  /// twice its perfect-overlap bound.
  double overlap_efficiency = 0.0;

  /// Share of the makespan each rank spends computing (A2), as in the
  /// paper's "theoretically 100% processor utilization" argument.
  double mean_compute_utilization = 0.0;
  double min_compute_utilization = 0.0;
  double max_compute_utilization = 0.0;

  /// DAG workloads only: the ALAP makespan lower bound the run reported
  /// through the "dag.alap_lower_bound_ns" counter, and the achieved /
  /// bound ratio (>= 1.0 by soundness; 0 when no bound was reported).
  /// Zero for nest-family runs — the table and JSON are byte-identical to
  /// the pre-workload output then.
  Time alap_lower_bound_ns = 0;
  double alap_bound_ratio = 0.0;

  /// Fleet-scheduler runs only: accumulated "sched.*" counters (jobs,
  /// preempted, backfilled), name-ordered.  Rendered only when non-empty,
  /// so non-fleet reports are byte-identical to the pre-scheduler output.
  std::map<std::string, double> sched_counters;

  /// Renders the per-rank A/B table with paper terms in the header.
  void write_table(std::ostream& os) const;

  /// Serializes the report as one JSON object (phase totals keyed by
  /// paper-facing phase names, summary scalars, per-rank breakdowns).
  void write_json(std::ostream& os) const;
};

/// The aggregating sink behind RunReport.  Thread-safe; reusable across
/// runs (each report() reflects everything seen so far; reset() clears).
class ReportSink final : public Sink {
 public:
  void span(int node, Phase phase, Time start, Time end,
            std::string_view label = {}) override;

  /// Captures the DAG runner's "dag.alap_lower_bound_ns" counter (so the
  /// report can print achieved makespan next to its lower bound) and
  /// accumulates the fleet scheduler's "sched.*" counters; every other
  /// counter is ignored.
  void counter(std::string_view name, double delta) override;

  RunReport report() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<RankBreakdown> ranks_;
  Time alap_lower_bound_ns_ = 0;
  std::map<std::string, double> sched_counters_;
};

}  // namespace tilo::obs
