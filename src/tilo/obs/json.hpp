// Tiny JSON formatting helpers shared by the obs exporters (and the bench
// JSON emitters): string escaping and shortest-round-trip number printing.
// Not a JSON library — just enough to write valid documents by hand.
#pragma once

#include <string>
#include <string_view>

namespace tilo::obs {

/// Returns `s` with JSON string escaping applied (quotes, backslashes and
/// control characters), without the surrounding quotes.
std::string json_escape(std::string_view s);

/// Formats a double with enough digits to round-trip (%.17g), mapping
/// non-finite values to 0 (JSON has no inf/nan).
std::string json_number(double v);

}  // namespace tilo::obs
