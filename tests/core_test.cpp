// Tests for the tilo::core facade: paper-style problems/plans, closed-form
// predictions vs simulation, sweeps and autotuning.
#include <gtest/gtest.h>

#include "tilo/core/predict.hpp"
#include "tilo/core/problem.hpp"
#include "tilo/core/sweep.hpp"
#include "tilo/loopnest/workloads.hpp"

using namespace tilo;
using core::Problem;
using lat::Vec;
using sched::ScheduleKind;
using util::i64;

namespace {

Problem small_problem() {
  return Problem{loop::stencil3d_nest(8, 8, 2048),
                 mach::MachineParams::paper_cluster(), Vec{4, 4, 1}, nullptr};
}

}  // namespace

TEST(ProblemTest, PaperProblemsHaveDocumentedGeometry) {
  const Problem p1 = core::paper_problem_i();
  EXPECT_EQ(p1.mapped_dim(), 2u);
  EXPECT_EQ(p1.tile_sides(444), (Vec{4, 4, 444}));
  EXPECT_EQ(p1.max_tile_height(), 16384);
  const Problem p3 = core::paper_problem_iii();
  EXPECT_EQ(p3.tile_sides(164), (Vec{8, 8, 164}));  // 32/4 = 8 per proc
}

TEST(ProblemTest, PlanGeometryMatchesPaperExperimentI) {
  const Problem p = core::paper_problem_i();
  const exec::TilePlan plan = p.plan(444, ScheduleKind::kOverlap);
  EXPECT_EQ(plan.mapping.num_ranks(), 16);
  EXPECT_EQ(plan.space.tile_space().extents(), (Vec{4, 4, 37}));
  // P(g) = 2*3 + 2*3 + 36 + 1 = 49; the paper rounds 16384/444 up to ~53
  // using a plain quotient — the closed form on the actual tiled space:
  EXPECT_EQ(plan.schedule_length(), 49);
}

TEST(ProblemTest, TileHeightClampsToExtent) {
  const Problem p = small_problem();
  EXPECT_EQ(p.tile_sides(100000)[2], 2048);
  EXPECT_THROW(p.tile_sides(0), util::Error);
}

TEST(PredictTest, SteadyShapeMatchesPaperPacketSize) {
  // Experiment i at V = 444: messages are 4 x 444 floats = 7104 bytes.
  const Problem p = core::paper_problem_i();
  const exec::TilePlan plan = p.plan(444, ScheduleKind::kOverlap);
  const mach::StepShape shape = core::steady_step_shape(plan, p.machine);
  ASSERT_EQ(shape.send_bytes.size(), 2u);  // to (i+1,j) and (i,j+1)
  ASSERT_EQ(shape.recv_bytes.size(), 2u);
  EXPECT_EQ(shape.send_bytes[0], 7104);
  EXPECT_EQ(shape.send_bytes[1], 7104);
  EXPECT_EQ(shape.iterations, 4 * 4 * 444);
}

TEST(PredictTest, PredictionTracksSimulationForOverlap) {
  // In the CPU-bound regime the eq. (4) prediction should be within a few
  // percent of the discrete-event simulation.
  const Problem p = small_problem();
  const exec::TilePlan plan = p.plan(64, ScheduleKind::kOverlap);
  const double predicted = core::predict_completion(plan, p.machine);
  const double simulated = exec::run_plan(p.nest, plan, p.machine).seconds;
  EXPECT_NEAR(simulated, predicted, 0.15 * predicted);
}

TEST(PredictTest, CpuBoundFormulaLowerBoundsOverlapPrediction) {
  const Problem p = small_problem();
  const exec::TilePlan plan = p.plan(32, ScheduleKind::kOverlap);
  EXPECT_LE(core::predict_overlap_cpu_bound(plan, p.machine),
            core::predict_completion(plan, p.machine) + 1e-12);
}

TEST(SweepTest, SweepProducesMonotoneGrid) {
  const auto grid = core::height_grid(4, 256, 2.0);
  ASSERT_GE(grid.size(), 2u);
  EXPECT_EQ(grid.front(), 4);
  EXPECT_EQ(grid.back(), 256);
  for (std::size_t i = 1; i < grid.size(); ++i)
    EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(SweepTest, OverlapOptimumBeatsNonOverlapOptimum) {
  // The paper's claim is about the *tuned* schedules: at its own optimal V
  // the overlapping schedule beats the non-overlapping one at its optimal
  // V.  (For very tall tiles the pipeline is too short to amortize the
  // overlap hyperplane's doubled coefficients, so a pointwise comparison
  // would be too strong.)
  const Problem p = small_problem();
  const auto points =
      core::sweep_tile_height(p, core::height_grid(4, 2048, 2.5));
  ASSERT_GE(points.size(), 4u);
  double best_over = points.front().t_overlap;
  double best_non = points.front().t_nonoverlap;
  for (const core::SweepPoint& pt : points) {
    EXPECT_GT(pt.g, 0);
    best_over = std::min(best_over, pt.t_overlap);
    best_non = std::min(best_non, pt.t_nonoverlap);
  }
  EXPECT_LT(best_over, best_non);
  // In the communication-dominated regime (small V) overlap always wins.
  EXPECT_LT(points.front().t_overlap, points.front().t_nonoverlap);
}

TEST(SweepTest, CompletionCurveIsUShaped) {
  // Tiny V pays per-step startup; huge V kills pipelining: the optimum is
  // interior, so the curve's minimum beats both endpoints.
  const Problem p = small_problem();
  const auto points =
      core::sweep_tile_height(p, core::height_grid(4, 2048, 1.8));
  double best = points.front().t_overlap;
  for (const auto& pt : points) best = std::min(best, pt.t_overlap);
  EXPECT_LT(best, points.front().t_overlap);
  EXPECT_LT(best, points.back().t_overlap);
}

TEST(SweepTest, AutotuneFindsInteriorOptimum) {
  const Problem p = small_problem();
  const core::Autotune best = core::autotune_tile_height(
      p, ScheduleKind::kOverlap, 4, p.max_tile_height());
  EXPECT_GT(best.V_opt, 4);
  EXPECT_LT(best.V_opt, p.max_tile_height());
  // The tuned time is at least as good as two arbitrary probes.
  const auto probe = core::sweep_tile_height(p, {8, 128});
  for (const auto& pt : probe) EXPECT_LE(best.t_opt, pt.t_overlap + 1e-12);
}

TEST(SweepTest, SkippingSchedulesLeavesZeros)
{
  const Problem p = small_problem();
  core::SweepOptions opts;
  opts.run_nonoverlap = false;
  const auto points = core::sweep_tile_height(p, {16}, opts);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_GT(points[0].t_overlap, 0.0);
  EXPECT_EQ(points[0].t_nonoverlap, 0.0);
  EXPECT_GT(points[0].predicted_nonoverlap, 0.0);
}
