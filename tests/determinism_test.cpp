// Determinism gates for the hot-path machinery: the pooled event engine,
// the workspace/comm-table reuse and the parallel sweep must all reproduce
// the exact timed traces of the original implementation.
//
// The integer goldens below (completion ns / events / messages) were
// captured from the seed implementation on the paper's three experiment
// problems; any drift in the engine's (time, seq) ordering, the executors'
// scheduling, or the sweep orchestration shows up here as a hard failure.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "tilo/core/plancache.hpp"
#include "tilo/core/sweep.hpp"
#include "tilo/trace/timeline.hpp"

namespace {

using tilo::core::PlanCache;
using tilo::core::Problem;
using tilo::core::ScheduleKind;
using tilo::core::SweepOptions;
using tilo::core::SweepPoint;
using tilo::util::i64;

Problem problem_for_space(int space) {
  switch (space) {
    case 0: return tilo::core::paper_problem_i();
    case 1: return tilo::core::paper_problem_ii();
    default: return tilo::core::paper_problem_iii();
  }
}

struct RunGolden {
  int space;
  i64 V;
  ScheduleKind kind;
  tilo::sim::Time completion;
  std::uint64_t events;
  i64 messages;
};

// Seed-captured timed-run goldens (RunOptions defaults: kDma, switched).
const RunGolden kRunGoldens[] = {
    {0, 64, ScheduleKind::kOverlap, 286221620, 28672, 6144},
    {0, 64, ScheduleKind::kNonOverlap, 471755472, 40960, 6144},
    {0, 444, ScheduleKind::kOverlap, 261890396, 4144, 888},
    {0, 444, ScheduleKind::kNonOverlap, 382022512, 5920, 888},
    {1, 64, ScheduleKind::kOverlap, 561798512, 57344, 12288},
    {1, 64, ScheduleKind::kNonOverlap, 935856848, 81920, 12288},
    {1, 444, ScheduleKind::kOverlap, 468912760, 8288, 1776},
    {1, 444, ScheduleKind::kNonOverlap, 723534608, 11840, 1776},
    {2, 64, ScheduleKind::kOverlap, 197542220, 7168, 1536},
    {2, 64, ScheduleKind::kNonOverlap, 272978640, 10240, 1536},
    {2, 444, ScheduleKind::kOverlap, 297799868, 1120, 240},
    {2, 444, ScheduleKind::kNonOverlap, 339391040, 1600, 240},
};

TEST(DeterminismTest, TimedRunsMatchSeedGoldens) {
  for (const RunGolden& g : kRunGoldens) {
    const Problem problem = problem_for_space(g.space);
    const tilo::exec::TilePlan plan = problem.plan(g.V, g.kind);
    const tilo::exec::RunResult r =
        tilo::exec::run_plan(problem.nest, plan, problem.machine);
    EXPECT_EQ(r.completion, g.completion)
        << "space " << g.space << " V " << g.V;
    EXPECT_EQ(r.events, g.events) << "space " << g.space << " V " << g.V;
    EXPECT_EQ(r.messages, g.messages) << "space " << g.space << " V " << g.V;
  }
}

std::string timeline_csv(const Problem& problem, i64 V, ScheduleKind kind,
                         tilo::exec::RunWorkspace* ws) {
  const tilo::exec::TilePlan plan = problem.plan(V, kind);
  tilo::trace::Timeline tl;
  tilo::exec::RunOptions opts;
  opts.sink = &tl;
  tilo::exec::run_plan(problem.nest, plan, problem.machine, opts, ws);
  std::ostringstream os;
  tl.write_csv(os);
  return os.str();
}

TEST(DeterminismTest, TimelinesByteIdenticalAcrossRunsAndWorkspaces) {
  const Problem problem = tilo::core::paper_problem_i();
  for (const ScheduleKind kind :
       {ScheduleKind::kOverlap, ScheduleKind::kNonOverlap}) {
    const std::string first = timeline_csv(problem, 444, kind, nullptr);
    const std::string second = timeline_csv(problem, 444, kind, nullptr);
    EXPECT_EQ(first, second);
    ASSERT_FALSE(first.empty());

    // A reused workspace (comm table + rank buffers warm from a previous
    // run, including the sibling schedule's) must not perturb the trace.
    tilo::exec::RunWorkspace ws;
    const std::string warmup =
        timeline_csv(problem, 444, ScheduleKind::kOverlap, &ws);
    (void)warmup;
    const std::string reused = timeline_csv(problem, 444, kind, &ws);
    EXPECT_EQ(first, reused);
  }
}

struct SweepGolden {
  i64 V;
  i64 g;
  double t_overlap;
  double t_nonoverlap;
  double predicted_overlap;
  double predicted_nonoverlap;
  double predicted_cpu_bound;
};

// Seed-captured sweep goldens for experiment (i) at V in {64, 444, 2048}.
const SweepGolden kSweepGoldens[] = {
    {64, 1024, 0.28622162000000001, 0.47175547200000001,
     0.28148575999999997, 0.49069875200000002, 0.28148575999999997},
    {444, 7104, 0.26189039600000003, 0.38202251200000004,
     0.27639527999999997, 0.40184428799999999, 0.27639527999999997},
    {2048, 32768, 0.43065964400000001, 0.50580884800000003,
     0.50034080000000003, 0.57240780800000002, 0.50034080000000003},
};

TEST(DeterminismTest, SerialSweepMatchesSeedGoldens) {
  const Problem problem = tilo::core::paper_problem_i();
  const std::vector<i64> heights{64, 444, 2048};
  const std::vector<SweepPoint> pts =
      tilo::core::sweep_tile_height(problem, heights);
  ASSERT_EQ(pts.size(), std::size(kSweepGoldens));
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const SweepGolden& g = kSweepGoldens[i];
    EXPECT_EQ(pts[i].V, g.V);
    EXPECT_EQ(pts[i].g, g.g);
    EXPECT_EQ(pts[i].t_overlap, g.t_overlap);
    EXPECT_EQ(pts[i].t_nonoverlap, g.t_nonoverlap);
    EXPECT_EQ(pts[i].predicted_overlap, g.predicted_overlap);
    EXPECT_EQ(pts[i].predicted_nonoverlap, g.predicted_nonoverlap);
    EXPECT_EQ(pts[i].predicted_cpu_bound, g.predicted_cpu_bound);
  }
}

void expect_points_identical(const std::vector<SweepPoint>& a,
                             const std::vector<SweepPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].V, b[i].V);
    EXPECT_EQ(a[i].g, b[i].g);
    // Exact: the simulations are deterministic, so parallel orchestration
    // must not change a single bit.
    EXPECT_EQ(a[i].t_overlap, b[i].t_overlap);
    EXPECT_EQ(a[i].t_nonoverlap, b[i].t_nonoverlap);
    EXPECT_EQ(a[i].predicted_overlap, b[i].predicted_overlap);
    EXPECT_EQ(a[i].predicted_nonoverlap, b[i].predicted_nonoverlap);
    EXPECT_EQ(a[i].predicted_cpu_bound, b[i].predicted_cpu_bound);
    EXPECT_EQ(a[i].events, b[i].events);
  }
}

TEST(DeterminismTest, ParallelSweepIdenticalToSerialAllSpaces) {
  for (int space = 0; space < 3; ++space) {
    const Problem problem = problem_for_space(space);
    const std::vector<i64> heights =
        tilo::core::height_grid(32, problem.max_tile_height(), 3.0);
    SweepOptions serial;
    const std::vector<SweepPoint> base =
        tilo::core::sweep_tile_height(problem, heights, serial);

    for (const int threads : {2, 4}) {
      SweepOptions par;
      par.threads = threads;
      const std::vector<SweepPoint> got =
          tilo::core::sweep_tile_height(problem, heights, par);
      expect_points_identical(base, got);
    }
  }
}

TEST(DeterminismTest, PlanCacheDoesNotPerturbSweep) {
  const Problem problem = tilo::core::paper_problem_iii();
  const std::vector<i64> heights{64, 100, 444};
  const std::vector<SweepPoint> base =
      tilo::core::sweep_tile_height(problem, heights);

  PlanCache cache;
  SweepOptions cached;
  cached.plan_cache = &cache;
  cached.threads = 2;
  const std::vector<SweepPoint> got =
      tilo::core::sweep_tile_height(problem, heights, cached);
  expect_points_identical(base, got);
  EXPECT_GT(cache.hits(), 0u);  // sibling-kind plans are derived, not built
  EXPECT_EQ(cache.misses(), heights.size());

  // A second cached sweep is served entirely from the cache.
  const std::uint64_t misses_before = cache.misses();
  const std::vector<SweepPoint> again =
      tilo::core::sweep_tile_height(problem, heights, cached);
  expect_points_identical(base, again);
  EXPECT_EQ(cache.misses(), misses_before);
}

TEST(DeterminismTest, ParallelAutotuneIdenticalToSerial) {
  const Problem problem = tilo::core::paper_problem_iii();
  for (const ScheduleKind kind :
       {ScheduleKind::kOverlap, ScheduleKind::kNonOverlap}) {
    SweepOptions serial;
    const tilo::core::Autotune base = tilo::core::autotune_tile_height(
        problem, kind, 16, problem.max_tile_height(), serial);
    SweepOptions par;
    par.threads = 4;
    PlanCache cache;
    par.plan_cache = &cache;
    const tilo::core::Autotune got = tilo::core::autotune_tile_height(
        problem, kind, 16, problem.max_tile_height(), par);
    EXPECT_EQ(base.V_opt, got.V_opt);
    EXPECT_EQ(base.t_opt, got.t_opt);
  }
}

}  // namespace
