// Stress tests for the pooled event engine: slot recycling under millions
// of events, FIFO ordering inside equal-time bursts, exception propagation
// mid-drain, the heap fallback for oversized callables, and leak-freedom
// (no callable leaked, none run twice) verified by instance counting.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "tilo/sim/engine.hpp"
#include "tilo/util/error.hpp"

namespace {

using tilo::sim::Engine;
using tilo::sim::Time;

// Counts live instances and invocations across copies/moves, so a test can
// assert that the pool destroyed every stored callable exactly once and
// invoked each scheduled event at most once.
struct Counted {
  static int live;
  static int runs;
  int* fired;

  explicit Counted(int* f) : fired(f) { ++live; }
  Counted(const Counted& o) : fired(o.fired) { ++live; }
  Counted(Counted&& o) noexcept : fired(o.fired) { ++live; }
  ~Counted() { --live; }
  Counted& operator=(const Counted&) = default;
  Counted& operator=(Counted&&) = default;

  void operator()() {
    ++runs;
    if (fired) ++*fired;
  }
};
int Counted::live = 0;
int Counted::runs = 0;

TEST(EngineStressTest, MillionEventsMixedAtAfter) {
  Engine e;
  std::uint64_t sum = 0;
  Time last = -1;
  bool monotone = true;
  const int kChains = 64;
  const int kSteps = 16000;  // 64 * 16000 = 1.024M events
  // Self-rescheduling chains with staggered periods: the pending set stays
  // small (recycled slots), total events cross one million.
  struct Tick {
    Engine* e;
    std::uint64_t* sum;
    Time* last;
    bool* monotone;
    Time period;
    int remaining;

    void operator()() {
      if (e->now() < *last) *monotone = false;
      *last = e->now();
      ++*sum;
      if (remaining > 0) {
        Tick next = *this;
        --next.remaining;
        if (next.remaining % 2 == 0) {
          e->after(period, next);
        } else {
          e->at(e->now() + period, next);
        }
      }
    }
  };
  for (int c = 0; c < kChains; ++c) {
    e.at(c, Tick{&e, &sum, &last, &monotone,
                 static_cast<Time>(1 + c % 7), kSteps - 1});
  }
  e.run();
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kChains) * kSteps);
  EXPECT_EQ(e.events_processed(), sum);
  EXPECT_EQ(e.events_pending(), 0u);
  EXPECT_TRUE(monotone);
}

TEST(EngineStressTest, EqualTimeBurstsRunInSchedulingOrder) {
  Engine e;
  std::vector<int> order;
  const int kBursts = 50;
  const int kPerBurst = 200;
  // Interleave scheduling across bursts so pool slots are handed out in an
  // order unrelated to the firing order.
  for (int i = 0; i < kPerBurst; ++i) {
    for (int b = 0; b < kBursts; ++b) {
      e.at(static_cast<Time>(b * 10), [&order, b, i] {
        order.push_back(b * kPerBurst + i);
      });
    }
  }
  e.run();
  ASSERT_EQ(order.size(),
            static_cast<std::size_t>(kBursts * kPerBurst));
  // Within one time, events must fire in the order they were scheduled:
  // for burst b that is i = 0, 1, 2, ... regardless of slot indices.
  std::size_t pos = 0;
  for (int b = 0; b < kBursts; ++b) {
    for (int i = 0; i < kPerBurst; ++i, ++pos) {
      ASSERT_EQ(order[pos], b * kPerBurst + i)
          << "burst " << b << " slot " << i;
    }
  }
}

TEST(EngineStressTest, ExceptionMidDrainReclaimsAndResumes) {
  Counted::live = 0;
  Counted::runs = 0;
  int fired = 0;
  {
    Engine e;
    for (int i = 0; i < 100; ++i) e.at(i, Counted{&fired});
    e.at(100, [] { throw tilo::util::Error("boom"); });
    for (int i = 0; i < 100; ++i) e.at(101 + i, Counted{&fired});

    EXPECT_THROW(e.run(), tilo::util::Error);
    // Events before the throw ran once each; the rest stay queued.
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(e.events_pending(), 100u);
    EXPECT_FALSE(e.running());

    // The engine is still usable: a second run drains the remainder in
    // order, reusing the thrower's reclaimed slot for new events.
    e.at(500, Counted{&fired});
    e.run();
    EXPECT_EQ(fired, 201);
    EXPECT_EQ(e.events_pending(), 0u);
  }
  // Every pooled copy was destroyed, and nothing ran twice.
  EXPECT_EQ(Counted::live, 0);
  EXPECT_EQ(Counted::runs, 201);
}

TEST(EngineStressTest, DestructorReleasesPendingCallables) {
  Counted::live = 0;
  Counted::runs = 0;
  int fired = 0;
  {
    Engine e;
    for (int i = 0; i < 1000; ++i) e.at(i, Counted{&fired});
    // No run(): the destructor must release all 1000 stored callables.
  }
  EXPECT_EQ(Counted::live, 0);
  EXPECT_EQ(Counted::runs, 0);
  EXPECT_EQ(fired, 0);
}

TEST(EngineStressTest, OversizedCallablesUseHeapFallbackCorrectly) {
  Counted::live = 0;
  Counted::runs = 0;
  // Padded beyond the inline slot capacity: stored via the heap fallback.
  struct Big {
    Counted counted;
    unsigned char pad[Engine::kInlineBytes + 64];
    explicit Big(int* f) : counted(f), pad{} {}
    void operator()() { counted(); }
  };
  static_assert(sizeof(Big) > Engine::kInlineBytes);

  int fired = 0;
  {
    Engine e;
    for (int i = 0; i < 500; ++i) e.at(i % 13, Big{&fired});
    for (int i = 0; i < 500; ++i) e.at(20 + i, Counted{&fired});  // inline
    e.run();
    EXPECT_EQ(fired, 1000);
    // Leave a few pending for the destructor path.
    e.at(100000, Big{&fired});
    e.at(100001, Counted{&fired});
  }
  EXPECT_EQ(Counted::live, 0);
  EXPECT_EQ(fired, 1000);
}

TEST(EngineStressTest, SchedulingIntoThePastThrows) {
  Engine e;
  e.at(10, [] {});
  e.run();
  EXPECT_EQ(e.now(), 10);
  EXPECT_THROW(e.at(5, [] {}), tilo::util::Error);
  EXPECT_THROW(e.after(-1, [] {}), tilo::util::Error);
}

}  // namespace
