// Tests for the rendezvous protocol extension: handshake timing, parked
// senders, and end-to-end executor behavior (functional equality, timing
// never better than eager).
#include <gtest/gtest.h>

#include "tilo/exec/run.hpp"
#include "tilo/loopnest/workloads.hpp"
#include "tilo/msg/cluster.hpp"

using namespace tilo;
using mach::AffineCost;
using mach::MachineParams;
using msg::Cluster;
using msg::Protocol;
using sim::Time;
using util::i64;

namespace {

MachineParams round_params() {
  MachineParams p;
  p.t_c = 1e-6;
  p.t_t = 1e-6;
  p.bytes_per_element = 8;
  p.wire_latency = 5e-6;
  p.fill_mpi_buffer = AffineCost{10e-6, 0.0};
  p.fill_kernel_buffer = AffineCost{20e-6, 0.0};
  return p;
}

constexpr Time kUs = 1000;

}  // namespace

TEST(RendezvousTest, PostedReceiveGrantsAfterOneRoundTrip) {
  // RTS at t=0 arrives at 5 us; recv already posted -> CTS back by 10 us;
  // pipeline B3+B4 = 70 us on the sender channel -> done 80 us; +5 us
  // latency; receiver leg B1+B2 = 70 us -> kernel-ready at 155 us
  // (eager would be 145 us: one extra round trip minus the overlap of...
  // exactly 2*latency later on the send start).
  Cluster c(2, round_params(), mach::OverlapLevel::kDma,
            msg::Network::kSwitched, nullptr, Protocol::kRendezvous);
  Time ready = -1;
  auto h = c.node(1).irecv(0, 1);
  msg::Endpoint::when_ready(h, [&] { ready = c.engine().now(); });
  c.engine().at(0, [&] { c.node(0).isend(1, 1, 100); });
  c.run();
  EXPECT_EQ(ready, (10 + 70 + 5 + 70) * kUs);
}

TEST(RendezvousTest, UnpostedReceiveParksTheSender) {
  // RTS arrives at 5 us but the recv is posted at t = 100 us: CTS leaves
  // then, pipeline starts at 105 us.
  Cluster c(2, round_params(), mach::OverlapLevel::kDma,
            msg::Network::kSwitched, nullptr, Protocol::kRendezvous);
  Time ready = -1;
  c.engine().at(0, [&] { c.node(0).isend(1, 1, 100); });
  c.engine().at(100 * kUs, [&] {
    auto h = c.node(1).irecv(0, 1);
    msg::Endpoint::when_ready(h, [&] { ready = c.engine().now(); });
  });
  c.run();
  EXPECT_EQ(ready, (100 + 5 + 70 + 5 + 70) * kUs);
}

TEST(RendezvousTest, SendDoneWaitsForHandshake) {
  Cluster c(2, round_params(), mach::OverlapLevel::kDma,
            msg::Network::kSwitched, nullptr, Protocol::kRendezvous);
  Time done = -1;
  c.node(1).irecv(0, 1);
  c.engine().at(0, [&] {
    auto sh = c.node(0).isend(1, 1, 100);
    msg::Endpoint::when_done(sh, [&] { done = c.engine().now(); });
  });
  c.run();
  EXPECT_EQ(done, (10 + 70) * kUs);  // handshake + local pipeline
}

TEST(RendezvousTest, TwoSendersFifoPerKey) {
  Cluster c(2, round_params(), mach::OverlapLevel::kDma,
            msg::Network::kSwitched, nullptr, Protocol::kRendezvous);
  auto p1 = std::make_shared<std::vector<double>>(std::vector<double>{1.0});
  auto p2 = std::make_shared<std::vector<double>>(std::vector<double>{2.0});
  c.engine().at(0, [&] {
    c.node(0).isend(1, 5, 8, msg::Payload{p1});
    c.node(0).isend(1, 5, 8, msg::Payload{p2});
  });
  std::vector<double> got;
  c.engine().at(1 * kUs, [&] {
    for (int i = 0; i < 2; ++i) {
      auto h = c.node(1).irecv(0, 5);
      // Waiters must be trivially copyable; the endpoint owns the posted
      // handle until delivery, so a raw pointer suffices.
      msg::RecvHandle* hp = h.get();
      msg::Endpoint::when_ready(
          h, [&got, hp] { got.push_back((*hp->payload.data)[0]); });
    }
  });
  c.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0], 1.0);
  EXPECT_DOUBLE_EQ(got[1], 2.0);
}

TEST(RendezvousTest, ExecutorStillComputesCorrectly) {
  const loop::LoopNest nest = loop::stencil3d_nest(8, 8, 24);
  const exec::TilePlan plan = exec::make_plan(
      nest, tile::RectTiling(lat::Vec{4, 4, 6}),
      sched::ScheduleKind::kOverlap);
  exec::RunOptions opts;
  opts.functional = true;
  opts.comm.protocol = Protocol::kRendezvous;
  const exec::RunResult run =
      exec::run_plan(nest, plan, round_params(), opts);
  const loop::DenseField ref = loop::run_sequential(nest);
  EXPECT_DOUBLE_EQ(loop::max_abs_diff(*run.field, ref), 0.0);
}

TEST(RendezvousTest, CommBoundRunsPayTheHandshake) {
  // At small grain (communication-bound steps) the per-message round trip
  // must show up as real overhead.  (At large grain rendezvous can even
  // edge out eager by a hair — deferring pipelines relieves the shared
  // DMA channel — so the comparison is only one-sided here.)
  const loop::LoopNest nest = loop::stencil3d_nest(8, 8, 128);
  const exec::TilePlan plan = exec::make_plan(
      nest, tile::RectTiling(lat::Vec{4, 4, 8}),
      sched::ScheduleKind::kOverlap);
  mach::MachineParams p = mach::MachineParams::paper_cluster();
  exec::RunOptions eager;
  exec::RunOptions rdv;
  rdv.comm.protocol = Protocol::kRendezvous;
  const double t_eager = exec::run_plan(nest, plan, p, eager).seconds;
  const double t_rdv = exec::run_plan(nest, plan, p, rdv).seconds;
  EXPECT_GT(t_rdv, t_eager);
  EXPECT_LT(t_rdv, 1.6 * t_eager);  // but bounded
}

TEST(RendezvousTest, OverheadShrinksWithGrain) {
  // The handshake penalty is per message: the ProcNB wait-for-sends pulls
  // it into the step's critical path, so the relative overhead falls as
  // the tile grain (steps' compute share) grows — the same grain argument
  // the paper makes for the startup costs.
  const loop::LoopNest nest = loop::stencil3d_nest(8, 8, 1024);
  mach::MachineParams p = mach::MachineParams::paper_cluster();
  auto overhead = [&](util::i64 V) {
    const exec::TilePlan plan = exec::make_plan(
        nest, tile::RectTiling(lat::Vec{4, 4, V}),
        sched::ScheduleKind::kOverlap);
    exec::RunOptions eager;
    exec::RunOptions rdv;
    rdv.comm.protocol = Protocol::kRendezvous;
    const double t_eager = exec::run_plan(nest, plan, p, eager).seconds;
    const double t_rdv = exec::run_plan(nest, plan, p, rdv).seconds;
    return (t_rdv - t_eager) / t_eager;
  };
  const double small_grain = overhead(8);
  const double large_grain = overhead(256);
  EXPECT_GE(small_grain, 0.0);
  EXPECT_LT(large_grain, small_grain);
  EXPECT_LT(large_grain, 0.25);
}
