// Unit tests for tilo::trace — timelines, utilization and Gantt rendering.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "tilo/trace/gantt.hpp"
#include "tilo/trace/timeline.hpp"

using namespace tilo;
using trace::Phase;
using trace::Timeline;

TEST(TimelineTest, RecordsAndAggregates) {
  Timeline tl;
  tl.record(0, Phase::kCompute, 0, 100);
  tl.record(0, Phase::kFillMpiSend, 100, 130);
  tl.record(1, Phase::kCompute, 50, 150);
  EXPECT_EQ(tl.makespan(), 150);
  EXPECT_EQ(tl.num_nodes(), 2);
  EXPECT_EQ(tl.phase_time(0, Phase::kCompute), 100);
  EXPECT_EQ(tl.phase_time(0, Phase::kFillMpiSend), 30);
  EXPECT_EQ(tl.phase_time(1, Phase::kCompute), 100);
}

TEST(TimelineTest, ZeroLengthIntervalsDropped) {
  Timeline tl;
  tl.record(0, Phase::kCompute, 5, 5);
  EXPECT_TRUE(tl.empty());
}

TEST(TimelineTest, BadIntervalsThrow) {
  Timeline tl;
  EXPECT_THROW(tl.record(-1, Phase::kCompute, 0, 1), util::Error);
  EXPECT_THROW(tl.record(0, Phase::kCompute, 2, 1), util::Error);
}

TEST(TimelineTest, ComputeUtilization) {
  Timeline tl;
  tl.record(0, Phase::kCompute, 0, 50);
  tl.record(0, Phase::kBlocked, 50, 100);
  tl.record(1, Phase::kCompute, 0, 100);
  EXPECT_DOUBLE_EQ(tl.compute_utilization(0), 0.5);
  EXPECT_DOUBLE_EQ(tl.compute_utilization(1), 1.0);
  EXPECT_DOUBLE_EQ(tl.mean_compute_utilization(), 0.75);
}

TEST(TimelineTest, CsvHasHeaderAndRows) {
  Timeline tl;
  tl.record(0, Phase::kWire, 10, 20, "msg");
  std::ostringstream os;
  tl.write_csv(os);
  EXPECT_NE(os.str().find("node,phase,start_ns,end_ns,label"),
            std::string::npos);
  EXPECT_NE(os.str().find("0,wire,10,20,msg"), std::string::npos);
}

TEST(PhaseTest, CodesAreUniqueAndNamed) {
  const Phase all[] = {Phase::kCompute,    Phase::kFillMpiSend,
                       Phase::kFillMpiRecv, Phase::kKernelSend,
                       Phase::kKernelRecv,  Phase::kWire,
                       Phase::kBlocked};
  std::set<char> codes;
  for (Phase p : all) {
    codes.insert(trace::phase_code(p));
    EXPECT_FALSE(trace::phase_name(p).empty());
  }
  EXPECT_EQ(codes.size(), std::size(all));
}

TEST(GanttTest, RendersOneRowPerNode) {
  Timeline tl;
  tl.record(0, Phase::kCompute, 0, 100);
  tl.record(1, Phase::kBlocked, 0, 50);
  tl.record(1, Phase::kCompute, 50, 100);
  std::ostringstream os;
  trace::GanttOptions opts;
  opts.width = 10;
  trace::render_gantt(os, tl, opts);
  const std::string out = os.str();
  EXPECT_NE(out.find("P00 |CCCCCCCCCC|"), std::string::npos);
  EXPECT_NE(out.find("P01 |.....CCCCC|"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
}

TEST(GanttTest, CpuPhasesWinOverDmaPhases) {
  Timeline tl;
  tl.record(0, Phase::kWire, 0, 100);
  tl.record(0, Phase::kCompute, 0, 10);  // short but CPU
  std::ostringstream os;
  trace::GanttOptions opts;
  opts.width = 1;
  opts.legend = false;
  trace::render_gantt(os, tl, opts);
  EXPECT_NE(os.str().find("|C|"), std::string::npos);
}

TEST(GanttTest, EmptyTimelineSaysSo) {
  std::ostringstream os;
  trace::render_gantt(os, Timeline{});
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}
