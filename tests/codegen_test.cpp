// Tests for the C + MPI code generator: structural checks on both program
// variants, a syntax check of the emitted translation unit with a stub
// mpi.h, and a full end-to-end run: the generated single-rank program is
// compiled with the host C compiler and its checksum compared against the
// sequential reference executor.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "tilo/codegen/mpi_program.hpp"
#include "tilo/loopnest/parse.hpp"
#include "tilo/loopnest/reference.hpp"
#include "tilo/loopnest/workloads.hpp"

using namespace tilo;
using lat::Vec;
using loop::LoopNest;
using sched::ScheduleKind;
using tile::RectTiling;

namespace {

// A minimal, functional single-rank MPI stand-in: enough for the generated
// program to compile everywhere and to *run* correctly with one rank.
const char* kStubMpiH = R"(#ifndef TILO_STUB_MPI_H
#define TILO_STUB_MPI_H
#include <stdlib.h>
typedef int MPI_Comm;
typedef int MPI_Request;
typedef int MPI_Status;
typedef int MPI_Datatype;
typedef int MPI_Op;
#define MPI_COMM_WORLD 0
#define MPI_FLOAT 4
#define MPI_DOUBLE 8
#define MPI_SUM 1
#define MPI_STATUS_IGNORE ((MPI_Status *)0)
#define MPI_STATUSES_IGNORE ((MPI_Status *)0)
static int MPI_Init(int *argc, char ***argv) { (void)argc; (void)argv; return 0; }
static int MPI_Finalize(void) { return 0; }
static int MPI_Comm_rank(MPI_Comm c, int *r) { (void)c; *r = 0; return 0; }
static int MPI_Comm_size(MPI_Comm c, int *s) { (void)c; *s = 1; return 0; }
static int MPI_Abort(MPI_Comm c, int code) { (void)c; exit(code); return 0; }
static int MPI_Send(const void *b, int n, MPI_Datatype t, int dst, int tag, MPI_Comm c)
{ (void)b; (void)n; (void)t; (void)dst; (void)tag; (void)c; return 0; }
static int MPI_Recv(void *b, int n, MPI_Datatype t, int src, int tag, MPI_Comm c, MPI_Status *s)
{ (void)b; (void)n; (void)t; (void)src; (void)tag; (void)c; (void)s; return 0; }
static int MPI_Isend(const void *b, int n, MPI_Datatype t, int dst, int tag, MPI_Comm c, MPI_Request *q)
{ (void)b; (void)n; (void)t; (void)dst; (void)tag; (void)c; *q = 0; return 0; }
static int MPI_Irecv(void *b, int n, MPI_Datatype t, int src, int tag, MPI_Comm c, MPI_Request *q)
{ (void)b; (void)n; (void)t; (void)src; (void)tag; (void)c; *q = 0; return 0; }
static int MPI_Waitall(int n, MPI_Request *q, MPI_Status *s)
{ (void)n; (void)q; (void)s; return 0; }
static int MPI_Reduce(const void *in, void *out, int n, MPI_Datatype t, MPI_Op op, int root, MPI_Comm c)
{ (void)op; (void)root; (void)c; { long i; long bytes = (long)n * (t == MPI_DOUBLE ? 8 : 4);
  for (i = 0; i < bytes; ++i) ((char *)out)[i] = ((const char *)in)[i]; } return 0; }
#endif
)";

/// Writes `text` to `path`.
void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path);
  ASSERT_TRUE(os.good()) << path;
  os << text;
}

/// Returns a scratch directory with the stub mpi.h in place.
std::string scratch_dir() {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "tilo_codegen_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter++);
  const std::string cmd = "mkdir -p " + dir;
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  write_file(dir + "/mpi.h", kStubMpiH);
  return dir;
}

int syntax_check(const std::string& program) {
  const std::string dir = scratch_dir();
  write_file(dir + "/prog.c", program);
  const std::string cmd = "gcc -x c -std=c99 -fsyntax-only -I " + dir + " " +
                          dir + "/prog.c 2> " + dir + "/log.txt";
  return std::system(cmd.c_str());
}

LoopNest small_nest() { return loop::stencil3d_nest(8, 8, 16); }

}  // namespace

TEST(CodegenTest, BlockingProgramHasProcBStructure) {
  const LoopNest nest = small_nest();
  const exec::TilePlan plan = exec::make_plan(
      nest, RectTiling(Vec{4, 4, 4}), ScheduleKind::kNonOverlap);
  const std::string src = gen::generate_mpi_program(nest, plan);
  EXPECT_NE(src.find("non-overlapping (ProcB"), std::string::npos);
  EXPECT_NE(src.find("MPI_Recv("), std::string::npos);
  EXPECT_NE(src.find("MPI_Send("), std::string::npos);
  EXPECT_EQ(src.find("MPI_Isend("), std::string::npos);
  // Receive phase precedes compute precedes send, the ProcB order.
  const auto recv_pos = src.find("MPI_Recv(");
  const auto compute_pos = src.find("compute_tile(tlo, thi)", recv_pos);
  const auto send_pos = src.find("MPI_Send(", compute_pos);
  EXPECT_NE(compute_pos, std::string::npos);
  EXPECT_NE(send_pos, std::string::npos);
}

TEST(CodegenTest, NonblockingProgramHasProcNBStructure) {
  const LoopNest nest = small_nest();
  const exec::TilePlan plan = exec::make_plan(
      nest, RectTiling(Vec{4, 4, 4}), ScheduleKind::kOverlap);
  const std::string src = gen::generate_mpi_program(nest, plan);
  EXPECT_NE(src.find("overlapping (ProcNB"), std::string::npos);
  // Isend of kt-1, then Irecv of kt+1, then compute, then the waits.
  const auto isend = src.find("MPI_Isend(");
  ASSERT_NE(isend, std::string::npos);
  const auto irecv = src.find("MPI_Irecv(", isend);
  ASSERT_NE(irecv, std::string::npos);
  const auto compute = src.find("compute_tile(tlo, thi)", irecv);
  ASSERT_NE(compute, std::string::npos);
  const auto wait = src.find("MPI_Waitall(", compute);
  EXPECT_NE(wait, std::string::npos);
}

TEST(CodegenTest, ConstantsMatchPlanGeometry) {
  const LoopNest nest = loop::paper_space_i();
  const exec::TilePlan plan = exec::make_plan(
      nest, RectTiling(Vec{4, 4, 444}), ScheduleKind::kOverlap);
  const std::string src = gen::generate_mpi_program(nest, plan);
  EXPECT_NE(src.find("#define TOTAL_RANKS 16"), std::string::npos);
  EXPECT_NE(src.find("#define MAPPED 2"), std::string::npos);
  EXPECT_NE(src.find("TS[NDIMS] = {4L, 4L, 444L}"), std::string::npos);
  EXPECT_NE(src.find("DHI[NDIMS] = {15L, 15L, 16383L}"), std::string::npos);
  EXPECT_NE(src.find("DIR[NDIRS][NDIMS]"), std::string::npos);
}

TEST(CodegenTest, KernelExpressionEmitted) {
  const LoopNest nest = small_nest();  // sqrt-sum kernel
  const exec::TilePlan plan = exec::make_plan(
      nest, RectTiling(Vec{4, 4, 4}), ScheduleKind::kOverlap);
  const std::string src = gen::generate_mpi_program(nest, plan);
  EXPECT_NE(src.find("sqrt(fabs(in[0])) + sqrt(fabs(in[1])) + "
                     "sqrt(fabs(in[2]))"),
            std::string::npos);
}

TEST(CodegenTest, ParsedKernelRoundTripsToC) {
  const LoopNest nest = loop::parse_nest(
      "FOR i = 0 TO 19\n FOR j = 0 TO 19\n"
      "  A(i, j) = 0.5 * A(i-1, j) + sqrt(A(i, j-1))\n ENDFOR\nENDFOR\n");
  const exec::TilePlan plan = exec::make_plan(
      nest, RectTiling(Vec{5, 5}), ScheduleKind::kOverlap);
  const std::string src = gen::generate_mpi_program(nest, plan);
  EXPECT_NE(src.find("((0.5 * in[0]) + sqrt(fabs(in[1])))"),
            std::string::npos);
}

TEST(CodegenTest, FloatElementTypeUsesMpiFloat) {
  const LoopNest nest = small_nest();
  const exec::TilePlan plan = exec::make_plan(
      nest, RectTiling(Vec{4, 4, 4}), ScheduleKind::kOverlap);
  gen::CodegenOptions opts;
  opts.element_type = "float";
  opts.boundary_value = 2.5;
  const std::string src = gen::generate_mpi_program(nest, plan, opts);
  EXPECT_NE(src.find("typedef float ELEM;"), std::string::npos);
  EXPECT_NE(src.find("#define MPI_ELEM MPI_FLOAT"), std::string::npos);
  EXPECT_NE(src.find("#define BOUNDARY_VALUE 2.5"), std::string::npos);
  EXPECT_EQ(syntax_check(src), 0);
}

TEST(CodegenTest, RejectsBadInputs) {
  const LoopNest nest = small_nest();
  const exec::TilePlan plan = exec::make_plan(
      nest, RectTiling(Vec{4, 4, 4}), ScheduleKind::kOverlap);
  gen::CodegenOptions opts;
  opts.element_type = "long double";
  EXPECT_THROW(gen::generate_mpi_program(nest, plan, opts), util::Error);

  const LoopNest other = loop::stencil3d_nest(8, 8, 32);
  EXPECT_THROW(gen::generate_mpi_program(other, plan), util::Error);
}

TEST(CodegenTest, GeneratedProgramsAreValidC) {
  const LoopNest nest = small_nest();
  for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
    const exec::TilePlan plan =
        exec::make_plan(nest, RectTiling(Vec{4, 4, 4}), kind);
    const std::string src = gen::generate_mpi_program(nest, plan);
    EXPECT_EQ(syntax_check(src), 0)
        << "generated program fails to parse, kind "
        << static_cast<int>(kind);
  }
}

TEST(CodegenTest, SingleRankProgramComputesTheNest) {
  // Compile the generated program against the functional single-rank MPI
  // stub, run it, and compare its checksum with the sequential reference.
  const LoopNest nest = loop::parse_nest(
      "FOR i = 0 TO 11\n FOR j = 0 TO 9\n FOR k = 0 TO 13\n"
      "  A(i, j, k) = 0.25*(A(i-1, j, k) + A(i, j-1, k)) + "
      "sqrt(A(i, j, k-1))\n"
      " ENDFOR\n ENDFOR\nENDFOR\n");
  for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
    // One rank; tile sides chosen so boundary tiles are partial.
    const exec::TilePlan plan = exec::make_plan_explicit(
        nest, RectTiling(Vec{5, 4, 6}), kind, 2, Vec{1, 1, 1});
    const std::string src = gen::generate_mpi_program(nest, plan);

    const std::string dir = scratch_dir();
    write_file(dir + "/prog.c", src);
    const std::string build = "gcc -x c -std=c99 -O1 -I " + dir + " -o " +
                              dir + "/prog " + dir + "/prog.c -lm 2> " +
                              dir + "/log.txt";
    ASSERT_EQ(std::system(build.c_str()), 0) << "kind "
                                             << static_cast<int>(kind);
    const std::string run = dir + "/prog > " + dir + "/out.txt";
    ASSERT_EQ(std::system(run.c_str()), 0);

    std::ifstream out(dir + "/out.txt");
    std::string word;
    double checksum = 0.0;
    out >> word >> checksum;
    ASSERT_EQ(word, "checksum");

    const loop::DenseField ref = loop::run_sequential(nest);
    double expect = 0.0;
    for (double v : ref.values) expect += v;
    EXPECT_NEAR(checksum, expect, 1e-9 * std::abs(expect))
        << "kind " << static_cast<int>(kind);
  }
}
