// Tests for sched::Policy and sched::FairShare — the multi-tenant fleet
// scheduling layer, driven entirely with a synthetic clock (every Policy
// call takes now_ns, so no sleeps and no wall-clock flakiness).
//
// The adversarial properties pinned here:
//   * fifo is the legacy dispatcher: submit order, requeue to the front,
//     caps and priorities ignored, never preempts;
//   * fair cannot starve: a flood tenant's priority is beaten by aging,
//     and equal-priority ties go to the tenant with the better fair-share
//     factor;
//   * backfill never delays the head job's projected start — grants go
//     only to candidates whose analytic cost fits in the hole;
//   * preemption selects the lowest-effective-priority running job in the
//     submitter's partition, only under a real partition-cap block.
//
// Suites are named Sched* so the TSan preset picks them up.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "tilo/sched/fairshare.hpp"
#include "tilo/sched/fleet_policy.hpp"
#include "tilo/util/error.hpp"

namespace {

using tilo::sched::FairShare;
using tilo::sched::JobSpec;
using tilo::sched::JobState;
using tilo::sched::JobStatus;
using tilo::sched::PartitionLimits;
using tilo::sched::Policy;
using tilo::sched::PolicyConfig;
using tilo::sched::TenantShare;
using tilo::sched::TenantStatus;
using tilo::util::i64;

constexpr std::size_t kNo = Policy::kNoUnit;

/// Contiguous unit indices [base, base+n).
std::vector<std::size_t> units_from(std::size_t base, std::size_t n) {
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = base + i;
  return out;
}

JobSpec spec(const std::string& name, const std::string& tenant,
             i64 priority, double cost_ns = 0,
             const std::string& partition = "default") {
  JobSpec s;
  s.name = name;
  s.tenant = tenant;
  s.partition = partition;
  s.priority = priority;
  s.unit_cost_ns = cost_ns;
  return s;
}

/// Drains pick() at a fixed now until kNoUnit; returns the order.
std::vector<std::size_t> drain(Policy& p, i64 now) {
  std::vector<std::size_t> order;
  for (std::size_t u = p.pick(now); u != kNo; u = p.pick(now))
    order.push_back(u);
  return order;
}

const JobStatus& status_of(const std::vector<JobStatus>& all, i64 id) {
  for (const JobStatus& j : all)
    if (j.id == id) return j;
  ADD_FAILURE() << "no job status for id " << id;
  static JobStatus none;
  return none;
}

}  // namespace

// ---------------------------------------------------------------------------
// FairShare: usage decay and the 2^(-u/s) factor.

TEST(SchedFairShareTest, FactorIsNeutralWithoutUsage) {
  FairShare fs;
  fs.declare(TenantShare{"a", 1.0});
  EXPECT_DOUBLE_EQ(fs.factor("a", 1'000), 1.0);
  EXPECT_DOUBLE_EQ(fs.factor("unknown", 1'000), 1.0);
}

TEST(SchedFairShareTest, UsageHalvesEveryHalfLife) {
  FairShare fs;
  fs.set_half_life(1'000);
  fs.declare(TenantShare{"a", 1.0});
  fs.charge("a", 8.0, 0);
  EXPECT_DOUBLE_EQ(fs.usage("a", 0), 8.0);
  EXPECT_DOUBLE_EQ(fs.usage("a", 1'000), 4.0);
  EXPECT_DOUBLE_EQ(fs.usage("a", 3'000), 1.0);
}

TEST(SchedFairShareTest, SoleHeavyUserGetsTheSlurmFactor) {
  FairShare fs;
  fs.declare(TenantShare{"hog", 1.0});
  fs.declare(TenantShare{"idle", 1.0});
  fs.charge("hog", 4.0, 0);
  // hog: u = 4/4 = 1, s = 1/2  ->  2^(-2) = 0.25.  idle: u = 0 -> 2^0.
  EXPECT_DOUBLE_EQ(fs.factor("hog", 0), 0.25);
  EXPECT_DOUBLE_EQ(fs.factor("idle", 0), 1.0);
}

TEST(SchedFairShareTest, LargerShareForgivesTheSameUsage) {
  FairShare fs;
  fs.declare(TenantShare{"big", 3.0});
  fs.declare(TenantShare{"small", 1.0});
  fs.charge("big", 2.0, 0);
  fs.charge("small", 2.0, 0);
  EXPECT_GT(fs.factor("big", 0), fs.factor("small", 0));
}

TEST(SchedFairShareTest, StatusesAreNameOrderedWithChargedCounts) {
  FairShare fs;
  fs.declare(TenantShare{"zeta", 1.0});
  fs.declare(TenantShare{"alpha", 2.0});
  fs.charge("zeta", 1.0, 0);
  const std::vector<TenantStatus> all = fs.statuses(0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "alpha");
  EXPECT_EQ(all[1].name, "zeta");
  EXPECT_EQ(all[1].charged_units, 1);
}

// ---------------------------------------------------------------------------
// Registry and submit validation.

TEST(SchedPolicyTest, RegistryHasThreePoliciesAndRejectsUnknown) {
  const std::vector<std::string> names = tilo::sched::policy_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "fifo");
  EXPECT_EQ(names[1], "fair");
  EXPECT_EQ(names[2], "backfill");
  for (const std::string& n : names) {
    PolicyConfig cfg;
    cfg.policy = n;
    EXPECT_EQ(tilo::sched::make_policy(cfg)->name(), n);
  }
  PolicyConfig bad;
  bad.policy = "lottery";
  EXPECT_THROW(tilo::sched::make_policy(bad), tilo::util::Error);
}

TEST(SchedPolicyTest, SubmitRejectsEmptyDuplicateAndMisalignedInput) {
  auto p = tilo::sched::make_policy({});
  EXPECT_THROW(p->submit(spec("empty", "t", 0), {}, {}, 0),
               tilo::util::Error);
  p->submit(spec("a", "t", 0), units_from(0, 2), {}, 0);
  EXPECT_THROW(p->submit(spec("dup", "t", 0), units_from(1, 2), {}, 0),
               tilo::util::Error);
  EXPECT_THROW(
      p->submit(spec("misaligned", "t", 0), units_from(10, 3), {1.0, 2.0}, 0),
      tilo::util::Error);
}

// ---------------------------------------------------------------------------
// fifo: the legacy dispatcher, bit for bit.

TEST(SchedPolicyTest, FifoDrainsJobsInSubmitOrder) {
  auto p = tilo::sched::make_policy({});
  p->submit(spec("a", "t", 0), units_from(0, 3), {}, 0);
  p->submit(spec("b", "t", 0), units_from(3, 2), {}, 0);
  EXPECT_EQ(drain(*p, 0), (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(p->queued(), 0u);
}

TEST(SchedPolicyTest, FifoIgnoresPrioritiesAndPartitionCaps) {
  PolicyConfig cfg;
  cfg.partitions.push_back(PartitionLimits{"tight", 1, 1});
  auto p = tilo::sched::make_policy(cfg);
  p->submit(spec("low", "t", 0, 0, "tight"), units_from(0, 2), {}, 0);
  p->submit(spec("high", "t", 100, 0, "tight"), units_from(2, 1), {}, 0);
  // Submit order wins, and the cap of 1 does not stop the second lease.
  EXPECT_EQ(drain(*p, 0), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SchedPolicyTest, FifoRequeueGoesBackToTheFront) {
  auto p = tilo::sched::make_policy({});
  p->submit(spec("a", "t", 0), units_from(0, 3), {}, 0);
  EXPECT_EQ(p->pick(0), 0u);
  EXPECT_EQ(p->pick(0), 1u);
  p->requeue(0, 5);
  EXPECT_EQ(p->pick(5), 0u);  // the requeued unit runs before unit 2
  EXPECT_EQ(p->pick(5), 2u);
}

TEST(SchedPolicyTest, FifoNeverNamesPreemptionVictims) {
  PolicyConfig cfg;
  cfg.partitions.push_back(PartitionLimits{"default", 1, 0});
  auto p = tilo::sched::make_policy(cfg);
  p->submit(spec("low", "t", 0), units_from(0, 1), {}, 0);
  EXPECT_EQ(p->pick(0), 0u);  // partition now full
  const i64 high = p->submit(spec("high", "t", 100), units_from(1, 1), {}, 0);
  EXPECT_TRUE(p->preemption_victims(high, 0).empty());
}

TEST(SchedPolicyTest, LifecycleCountersTrackPickCompleteRequeue) {
  auto p = tilo::sched::make_policy({});
  const i64 id = p->submit(spec("a", "acme", 0, 10.0), units_from(0, 2), {}, 0);
  EXPECT_EQ(status_of(p->job_statuses(0), id).state, JobState::kPending);
  EXPECT_EQ(p->pick(0), 0u);
  {
    const JobStatus s = status_of(p->job_statuses(0), id);
    EXPECT_EQ(s.state, JobState::kRunning);
    EXPECT_EQ(s.queued, 1u);
    EXPECT_EQ(s.in_flight, 1u);
  }
  p->complete(0, 100);
  EXPECT_EQ(p->pick(100), 1u);
  p->complete(1, 200);
  {
    const JobStatus s = status_of(p->job_statuses(200), id);
    EXPECT_EQ(s.state, JobState::kDone);
    EXPECT_EQ(s.done, 2u);
    EXPECT_EQ(s.in_flight, 0u);
  }
  // Fair-share charged both completions to the tenant.
  ASSERT_EQ(p->tenant_statuses(200).size(), 1u);
  EXPECT_EQ(p->tenant_statuses(200)[0].charged_units, 2);
}

TEST(SchedPolicyTest, ZombieCompletionOfARequeuedUnitStillCounts) {
  auto p = tilo::sched::make_policy({});
  const i64 id = p->submit(spec("a", "t", 0), units_from(0, 1), {}, 0);
  EXPECT_EQ(p->pick(0), 0u);
  p->requeue(0, 10);  // owner evicted; unit queued again
  p->complete(0, 20);  // ...but the zombie's result arrives and wins
  EXPECT_EQ(status_of(p->job_statuses(20), id).state, JobState::kDone);
  EXPECT_EQ(p->pick(20), kNo);  // nothing left to lease
}

TEST(SchedPolicyTest, AgingRaisesEffectivePriorityUpToTheCap) {
  PolicyConfig cfg;
  cfg.aging_ns = 100;
  cfg.aging_cap = 5;
  auto p = tilo::sched::make_policy(cfg);
  const i64 id = p->submit(spec("a", "t", 7), units_from(0, 1), {}, 1'000);
  EXPECT_EQ(status_of(p->job_statuses(1'000), id).effective_priority, 7);
  EXPECT_EQ(status_of(p->job_statuses(1'300), id).effective_priority, 10);
  EXPECT_EQ(status_of(p->job_statuses(9'000), id).effective_priority, 12);
}

// ---------------------------------------------------------------------------
// fair: strict priority + fair-share order with head-of-line reservation.

TEST(SchedFairTest, HigherPriorityJobRunsFirst) {
  PolicyConfig cfg;
  cfg.policy = "fair";
  auto p = tilo::sched::make_policy(cfg);
  p->submit(spec("low", "t", 0), units_from(0, 2), {}, 0);
  p->submit(spec("high", "t", 5), units_from(2, 2), {}, 0);
  EXPECT_EQ(drain(*p, 0), (std::vector<std::size_t>{2, 3, 0, 1}));
}

TEST(SchedFairTest, HeadOfLineReservesTheFreedSlot) {
  PolicyConfig cfg;
  cfg.policy = "fair";
  cfg.partitions.push_back(PartitionLimits{"default", 1, 0});
  auto p = tilo::sched::make_policy(cfg);
  p->submit(spec("head", "t", 5), units_from(0, 2), {}, 0);
  p->submit(spec("other", "t", 0), units_from(2, 1), {}, 0);
  EXPECT_EQ(p->pick(0), 0u);   // head takes the only slot
  EXPECT_EQ(p->pick(0), kNo);  // "other" may NOT sneak in (sched/builtin)
  p->complete(0, 10);
  EXPECT_EQ(p->pick(10), 1u);  // the freed slot goes to the head again
  p->complete(1, 20);
  EXPECT_EQ(p->pick(20), 2u);  // only then does "other" run
}

TEST(SchedFairTest, WidthCapLimitsAJobsOwnConcurrency) {
  PolicyConfig cfg;
  cfg.policy = "fair";
  cfg.partitions.push_back(PartitionLimits{"default", 0, 1});
  auto p = tilo::sched::make_policy(cfg);
  p->submit(spec("a", "t", 0), units_from(0, 2), {}, 0);
  EXPECT_EQ(p->pick(0), 0u);
  EXPECT_EQ(p->pick(0), kNo);  // a's width cap; nothing else queued
  p->complete(0, 10);
  EXPECT_EQ(p->pick(10), 1u);
}

TEST(SchedFairTest, FreshTenantBeatsHeavyTenantAtEqualPriority) {
  PolicyConfig cfg;
  cfg.policy = "fair";
  auto p = tilo::sched::make_policy(cfg);
  // The hog runs (and is charged for) one unit first.
  p->submit(spec("warmup", "hog", 0, 1'000.0), units_from(0, 1), {}, 0);
  EXPECT_EQ(p->pick(0), 0u);
  p->complete(0, 10);
  // Now equal-priority jobs from the hog and a fresh tenant: the fresh
  // tenant's better fair-share factor breaks the tie.
  p->submit(spec("more", "hog", 0, 1'000.0), units_from(1, 1), {}, 20);
  p->submit(spec("first", "fresh", 0, 1'000.0), units_from(2, 1), {}, 20);
  EXPECT_EQ(p->pick(20), 2u);
}

TEST(SchedFairTest, AgingClosesABasePriorityGap) {
  PolicyConfig cfg;
  cfg.policy = "fair";
  cfg.aging_ns = 100;
  cfg.aging_cap = 1'000;
  auto p = tilo::sched::make_policy(cfg);
  // "old" (prio 0) has waited 10 aging periods when "young" (prio 5)
  // arrives: effective 10 vs 5, so the flood of young high-priority work
  // cannot starve it.
  p->submit(spec("old", "t", 0), units_from(0, 1), {}, 0);
  p->submit(spec("young", "t", 5), units_from(1, 1), {}, 1'000);
  EXPECT_EQ(p->pick(1'000), 0u);
}

TEST(SchedFairTest, SeededTieBreakIsDeterministic) {
  PolicyConfig cfg;
  cfg.policy = "fair";
  cfg.seed = 42;
  auto a = tilo::sched::make_policy(cfg);
  auto b = tilo::sched::make_policy(cfg);
  for (Policy* p : {a.get(), b.get()}) {
    p->submit(spec("j0", "t", 0), units_from(0, 1), {}, 0);
    p->submit(spec("j1", "t", 0), units_from(1, 1), {}, 0);
    p->submit(spec("j2", "t", 0), units_from(2, 1), {}, 0);
  }
  EXPECT_EQ(drain(*a, 0), drain(*b, 0));
}

TEST(SchedFairTest, SeedZeroKeepsSubmitOrderOnTies) {
  PolicyConfig cfg;
  cfg.policy = "fair";
  auto p = tilo::sched::make_policy(cfg);
  p->submit(spec("j0", "t", 0), units_from(0, 1), {}, 0);
  p->submit(spec("j1", "t", 0), units_from(1, 1), {}, 0);
  EXPECT_EQ(drain(*p, 0), (std::vector<std::size_t>{0, 1}));
}

// ---------------------------------------------------------------------------
// backfill: out-of-order grants that never delay the head.

namespace {

/// The canonical backfill scene: a 2-slot partition with a per-job width
/// cap of 1.  The head leases one `head_cost`-ns unit and is then blocked
/// by its own width cap, leaving a free slot the head cannot use — the
/// hole a `cand_cost` candidate may backfill into.  Returns the
/// candidate's unit on a successful backfill, kNo otherwise.
std::size_t backfill_scene(double head_cost, double cand_cost, i64 probe_ns,
                           std::uint64_t* backfills = nullptr) {
  PolicyConfig cfg;
  cfg.policy = "backfill";
  cfg.partitions.push_back(PartitionLimits{"default", 2, 1});
  auto p = tilo::sched::make_policy(cfg);
  p->submit(spec("head", "t", 5, head_cost), units_from(0, 2), {}, 0);
  p->submit(spec("cand", "t", 0, cand_cost), units_from(2, 1), {}, 0);
  EXPECT_EQ(p->pick(0), 0u);  // head leases at t=0, now width-blocked
  const std::size_t got = p->pick(probe_ns);
  if (backfills) *backfills = p->backfilled();
  return got;
}

}  // namespace

TEST(SchedBackfillTest, SmallJobFitsInTheHole) {
  // Head's lease releases the slot at t=1000; a 100ns candidate probed at
  // t=0 finishes by t=100 <= 1000 — backfill it.
  std::uint64_t backfills = 0;
  EXPECT_EQ(backfill_scene(1'000.0, 100.0, 0, &backfills), 2u);
  EXPECT_EQ(backfills, 1u);
}

TEST(SchedBackfillTest, GrantThatWouldDelayTheHeadIsRefused) {
  EXPECT_EQ(backfill_scene(1'000.0, 2'000.0, 0), kNo);
}

TEST(SchedBackfillTest, TheHoleShrinksAsTimeAdvances) {
  EXPECT_EQ(backfill_scene(1'000.0, 300.0, 500), 2u);  // 500+300 <= 1000
  EXPECT_EQ(backfill_scene(1'000.0, 300.0, 800), kNo);  // 800+300 > 1000
}

TEST(SchedBackfillTest, UnknownCostNeverBackfills) {
  EXPECT_EQ(backfill_scene(1'000.0, 0.0, 0), kNo);
}

TEST(SchedBackfillTest, UnblockedHeadStillRunsFirst) {
  PolicyConfig cfg;
  cfg.policy = "backfill";
  auto p = tilo::sched::make_policy(cfg);
  p->submit(spec("low", "t", 0, 10.0), units_from(0, 1), {}, 0);
  p->submit(spec("high", "t", 5, 10.0), units_from(1, 1), {}, 0);
  EXPECT_EQ(p->pick(0), 1u);
  EXPECT_EQ(p->backfilled(), 0u);
}

TEST(SchedBackfillTest, BackfillSkipsPastABlockedMiddleJob) {
  PolicyConfig cfg;
  cfg.policy = "backfill";
  cfg.partitions.push_back(PartitionLimits{"default", 2, 1});
  auto p = tilo::sched::make_policy(cfg);
  p->submit(spec("head", "t", 9, 1'000.0), units_from(0, 2), {}, 0);
  // "mid" is too big for the hole; "tail" fits.
  p->submit(spec("mid", "t", 5, 5'000.0), units_from(2, 1), {}, 0);
  p->submit(spec("tail", "t", 0, 100.0), units_from(3, 1), {}, 0);
  EXPECT_EQ(p->pick(0), 0u);
  EXPECT_EQ(p->pick(0), 3u);  // tail backfills past mid
}

// ---------------------------------------------------------------------------
// Preemption: the victims query.

namespace {

/// Two-slot partition filled by a low-priority job, then a `prio`
/// submitter arrives with preemption `enabled` under `policy`.
struct PreemptScene {
  std::unique_ptr<Policy> p;
  i64 low = 0;
  i64 high = 0;
};

PreemptScene preempt_scene(const std::string& policy, i64 prio,
                           bool enabled = true) {
  PolicyConfig cfg;
  cfg.policy = policy;
  cfg.preempt = enabled;
  cfg.partitions.push_back(PartitionLimits{"default", 2, 0});
  PreemptScene s;
  s.p = tilo::sched::make_policy(cfg);
  s.low = s.p->submit(spec("low", "t", 1), units_from(0, 2), {}, 0);
  EXPECT_EQ(s.p->pick(0), 0u);
  EXPECT_EQ(s.p->pick(0), 1u);  // partition full
  s.high = s.p->submit(spec("high", "t", prio), units_from(2, 1), {}, 0);
  return s;
}

}  // namespace

TEST(SchedPreemptTest, BlockedHighPriorityArrivalNamesTheLowJobsLeases) {
  PreemptScene s = preempt_scene("fair", 9);
  EXPECT_EQ(s.p->preemption_victims(s.high, 0),
            (std::vector<std::size_t>{0, 1}));
  // The controller requeues the victims; the high job then picks first.
  s.p->requeue(0, 5, /*preempted=*/true);
  s.p->requeue(1, 5, /*preempted=*/true);
  EXPECT_EQ(s.p->pick(5), 2u);
  EXPECT_EQ(status_of(s.p->job_statuses(5), s.low).preempted, 2);
}

TEST(SchedPreemptTest, EqualPriorityDoesNotPreempt) {
  PreemptScene s = preempt_scene("fair", 1);
  EXPECT_TRUE(s.p->preemption_victims(s.high, 0).empty());
}

TEST(SchedPreemptTest, ConfigSwitchDisablesPreemption) {
  PreemptScene s = preempt_scene("fair", 9, /*enabled=*/false);
  EXPECT_TRUE(s.p->preemption_victims(s.high, 0).empty());
}

TEST(SchedPreemptTest, UnblockedSubmitterDoesNotPreempt) {
  PolicyConfig cfg;
  cfg.policy = "fair";  // no partition cap: nothing blocks
  auto p = tilo::sched::make_policy(cfg);
  p->submit(spec("low", "t", 1), units_from(0, 1), {}, 0);
  EXPECT_EQ(p->pick(0), 0u);
  const i64 high = p->submit(spec("high", "t", 9), units_from(1, 1), {}, 0);
  EXPECT_TRUE(p->preemption_victims(high, 0).empty());
}

TEST(SchedPreemptTest, WidthBlockedSubmitterHasNobodyToBlame) {
  PolicyConfig cfg;
  cfg.policy = "fair";
  cfg.partitions.push_back(PartitionLimits{"default", 0, 1});
  auto p = tilo::sched::make_policy(cfg);
  p->submit(spec("low", "t", 1), units_from(0, 1), {}, 0);
  EXPECT_EQ(p->pick(0), 0u);
  const i64 high = p->submit(spec("high", "t", 9), units_from(1, 2), {}, 0);
  EXPECT_EQ(p->pick(0), 1u);   // high runs one unit (its width cap)
  // high is still queued but blocked by its OWN cap, not the partition:
  // evicting "low" would not free anything for it.
  EXPECT_TRUE(p->preemption_victims(high, 0).empty());
}

TEST(SchedPreemptTest, LowestEffectivePriorityRunningJobIsTheVictim) {
  PolicyConfig cfg;
  cfg.policy = "fair";
  cfg.partitions.push_back(PartitionLimits{"default", 2, 0});
  auto p = tilo::sched::make_policy(cfg);
  const i64 mid = p->submit(spec("mid", "t", 3), units_from(0, 1), {}, 0);
  const i64 low = p->submit(spec("low", "t", 1), units_from(1, 1), {}, 0);
  EXPECT_EQ(p->pick(0), 0u);
  EXPECT_EQ(p->pick(0), 1u);
  const i64 high = p->submit(spec("high", "t", 9), units_from(2, 1), {}, 0);
  EXPECT_EQ(p->preemption_victims(high, 0),
            (std::vector<std::size_t>{1}));  // low's lease, not mid's
  (void)mid;
  (void)low;
}

// ---------------------------------------------------------------------------
// Introspection plumbing shared by all policies.

TEST(SchedPolicyTest, PartitionStatusesReportDeclaredLimitsAndOccupancy) {
  PolicyConfig cfg;
  cfg.partitions.push_back(PartitionLimits{"gpu", 8, 2});
  auto p = tilo::sched::make_policy(cfg);
  p->submit(spec("a", "t", 0, 0, "gpu"), units_from(0, 3), {}, 0);
  p->submit(spec("b", "t", 0, 0), units_from(3, 1), {}, 0);  // auto "default"
  EXPECT_EQ(p->pick(0), 0u);
  const auto parts = p->partition_statuses();
  ASSERT_EQ(parts.size(), 2u);  // name-ordered: default, gpu
  EXPECT_EQ(parts[0].name, "default");
  EXPECT_EQ(parts[0].max_in_flight, 0);
  EXPECT_EQ(parts[1].name, "gpu");
  EXPECT_EQ(parts[1].max_in_flight, 8);
  EXPECT_EQ(parts[1].max_units_per_job, 2);
  EXPECT_EQ(parts[1].in_flight, 1u);
  EXPECT_EQ(parts[1].queued, 2u);
}
