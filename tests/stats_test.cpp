// Tests for trace::stats and the paper's utilization claim: the pipelined
// schedule keeps processors computing a larger share of the makespan.
#include <gtest/gtest.h>

#include <sstream>

#include "tilo/exec/run.hpp"
#include "tilo/loopnest/workloads.hpp"
#include "tilo/trace/stats.hpp"

using namespace tilo;
using trace::Phase;
using trace::RunStats;
using trace::Timeline;

TEST(StatsTest, SummarizeAggregatesPerNode) {
  Timeline tl;
  tl.record(0, Phase::kCompute, 0, 60);
  tl.record(0, Phase::kFillMpiSend, 60, 70);
  tl.record(0, Phase::kBlocked, 70, 100);
  tl.record(1, Phase::kCompute, 0, 100);
  const RunStats s = trace::summarize(tl);
  EXPECT_EQ(s.makespan, 100);
  ASSERT_EQ(s.nodes.size(), 2u);
  EXPECT_EQ(s.nodes[0].time(Phase::kCompute), 60);
  EXPECT_EQ(s.nodes[0].cpu_busy, 70);
  EXPECT_DOUBLE_EQ(s.nodes[0].compute_utilization, 0.6);
  EXPECT_DOUBLE_EQ(s.nodes[1].compute_utilization, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_compute_utilization, 0.8);
  EXPECT_DOUBLE_EQ(s.min_compute_utilization, 0.6);
  EXPECT_DOUBLE_EQ(s.max_compute_utilization, 1.0);
}

TEST(StatsTest, EmptyTimeline) {
  const RunStats s = trace::summarize(Timeline{});
  EXPECT_EQ(s.makespan, 0);
  EXPECT_TRUE(s.nodes.empty());
  EXPECT_DOUBLE_EQ(s.mean_compute_utilization, 0.0);
}

TEST(StatsTest, TableRendersAllNodes) {
  Timeline tl;
  tl.record(0, Phase::kCompute, 0, 50);
  tl.record(1, Phase::kWire, 0, 25);
  std::ostringstream os;
  trace::write_stats_table(os, trace::summarize(tl));
  EXPECT_NE(os.str().find("compute util"), std::string::npos);
  EXPECT_NE(os.str().find("makespan"), std::string::npos);
  EXPECT_NE(os.str().find("100.0 %"), std::string::npos);
}

TEST(StatsTest, OverlapScheduleRaisesComputeUtilization) {
  // The paper's Section 4 argument, measured: at the same grain the
  // pipelined schedule computes a strictly larger share of the makespan.
  const loop::LoopNest nest = loop::stencil3d_nest(8, 8, 512);
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  double util[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    const auto kind = i == 0 ? sched::ScheduleKind::kNonOverlap
                             : sched::ScheduleKind::kOverlap;
    const exec::TilePlan plan =
        exec::make_plan(nest, tile::RectTiling(lat::Vec{4, 4, 32}), kind);
    trace::Timeline tl;
    exec::RunOptions opts;
    opts.sink = &tl;
    exec::run_plan(nest, plan, p, opts);
    util[i] = trace::summarize(tl).mean_compute_utilization;
  }
  EXPECT_GT(util[1], util[0]);
}

TEST(StatsTest, CpuBusyNeverExceedsMakespan) {
  const loop::LoopNest nest = loop::stencil3d_nest(8, 8, 64);
  const exec::TilePlan plan = exec::make_plan(
      nest, tile::RectTiling(lat::Vec{4, 4, 8}),
      sched::ScheduleKind::kOverlap);
  trace::Timeline tl;
  exec::RunOptions opts;
  opts.sink = &tl;
  exec::run_plan(nest, plan, mach::MachineParams::paper_cluster(), opts);
  const RunStats s = trace::summarize(tl);
  for (const auto& ns : s.nodes) EXPECT_LE(ns.cpu_busy, s.makespan);
}
