// Tests for the legality-skew construction (tiling/skew) and the optimal
// linear-schedule search (sched/pi_search).
#include <gtest/gtest.h>

#include "tilo/loopnest/workloads.hpp"
#include "tilo/sched/pi_search.hpp"
#include "tilo/sched/tiled.hpp"
#include "tilo/sched/uetuct.hpp"
#include "tilo/tiling/cost.hpp"
#include "tilo/tiling/skew.hpp"
#include "tilo/util/rng.hpp"

using namespace tilo;
using lat::Box;
using lat::Mat;
using lat::Vec;
using loop::DependenceSet;
using util::i64;

// -------------------------------------------------------------- skew ----

TEST(SkewTest, WavefrontDependencesGetLegalSkew) {
  // The classic SOR-style set with a negative component.
  const DependenceSet deps({Vec{1, -1}, Vec{1, 0}, Vec{1, 1}});
  const auto skew = tile::find_legal_skew(deps);
  ASSERT_TRUE(skew.has_value());
  EXPECT_EQ(std::abs(skew->det()), 1);
  for (const Vec& d : deps) EXPECT_TRUE((*skew * d).is_nonneg());
}

TEST(SkewTest, AlreadyNonnegativeStaysLegal) {
  const DependenceSet deps({Vec{1, 0, 0}, Vec{0, 1, 0}, Vec{0, 0, 1}});
  const auto skew = tile::find_legal_skew(deps);
  ASSERT_TRUE(skew.has_value());
  for (const Vec& d : deps) EXPECT_TRUE((*skew * d).is_nonneg());
}

TEST(SkewTest, RandomLexPositiveSetsAlwaysSkewable) {
  util::Rng rng(2024);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t dims = static_cast<std::size_t>(rng.uniform(2, 4));
    loop::RandomNestOptions opts;
    opts.dims = dims;
    opts.num_deps = static_cast<std::size_t>(rng.uniform(1, 4));
    opts.max_dep_component = 3;
    opts.nonneg_deps = false;  // allow negative components
    const loop::LoopNest nest = loop::random_nest(rng, opts);
    const auto skew = tile::find_legal_skew(nest.deps());
    ASSERT_TRUE(skew.has_value()) << nest.deps().str();
    EXPECT_EQ(std::abs(skew->det()), 1);
    for (const Vec& d : nest.deps())
      EXPECT_TRUE((*skew * d).is_nonneg())
          << "deps " << nest.deps().str() << " d " << d.str();
  }
}

TEST(SkewTest, SkewedDepsFormAValidDependenceSet) {
  const DependenceSet deps({Vec{1, -2}, Vec{0, 1}});
  const auto skew = tile::find_legal_skew(deps);
  ASSERT_TRUE(skew.has_value());
  const DependenceSet skewed = tile::skew_deps(*skew, deps);
  EXPECT_EQ(skewed.size(), 2u);
  EXPECT_TRUE(skewed.is_nonneg());
}

TEST(SkewTest, SkewedTilingIsLegalSupernode) {
  const DependenceSet deps({Vec{1, -1}, Vec{0, 1}});
  const auto skew = tile::find_legal_skew(deps);
  ASSERT_TRUE(skew.has_value());
  // Sides larger than the skewed dependence components.
  const DependenceSet skewed = tile::skew_deps(*skew, deps);
  Vec sides(2);
  for (std::size_t d = 0; d < 2; ++d)
    sides[d] = skewed.max_component(d) + 2;
  const tile::Supernode sn = tile::skewed_tiling(*skew, sides);
  EXPECT_TRUE(sn.is_legal(deps));
  EXPECT_TRUE(sn.contains_deps(deps));
  // Tile volume is the product of sides (unimodular skew preserves it).
  EXPECT_EQ(sn.tile_volume(), sides[0] * sides[1]);
}

TEST(SkewTest, NonUnimodularSkewRejected) {
  EXPECT_THROW(tile::skewed_tiling(Mat{{2, 0}, {0, 1}}, Vec{4, 4}),
               util::Error);
}

// ---------------------------------------------------------- pi search ----

TEST(PiSearchTest, UnitDepsGiveUnitHyperplane) {
  const Box space = Box::from_extents(Vec{10, 10});
  const auto r = sched::optimal_pi_uniform(
      space, {Vec{1, 0}, Vec{0, 1}}, 1);
  EXPECT_EQ(r.pi, (Vec{1, 1}));
  EXPECT_EQ(r.length, 19);
}

TEST(PiSearchTest, MatchesNonOverlapClosedFormOnTiledSpaces) {
  const loop::LoopNest nest = loop::stencil3d_nest(8, 8, 64);
  const tile::TiledSpace space(nest, tile::RectTiling(Vec{4, 4, 8}));
  const auto r = sched::optimal_pi_uniform(space.tile_space(),
                                           space.tile_deps(), 1);
  EXPECT_EQ(r.pi, (Vec{1, 1, 1}));
  EXPECT_EQ(r.length,
            sched::nonoverlap_schedule_length(space.last_tile()));
}

TEST(PiSearchTest, UetUctGapsRecoverTheOverlapHyperplane) {
  // Tile deps of the 3-D stencil with gap 2 on communicating directions
  // and gap 1 along the (longest) mapped dimension: the search must find
  // the paper's Π = (2, 2, 1) with the UET-UCT-optimal makespan.
  const loop::LoopNest nest = loop::stencil3d_nest(8, 8, 64);
  const tile::TiledSpace space(nest, tile::RectTiling(Vec{4, 4, 8}));
  const std::size_t md = 2;
  std::vector<Vec> deps = space.tile_deps();
  std::vector<i64> gaps;
  for (const Vec& e : deps) {
    bool comm = false;
    for (std::size_t d = 0; d < 3; ++d)
      if (d != md && e[d] != 0) comm = true;
    gaps.push_back(comm ? 2 : 1);
  }
  const auto r = sched::optimal_pi(space.tile_space(), deps, gaps);
  EXPECT_EQ(r.pi, (Vec{2, 2, 1}));
  EXPECT_EQ(r.length, sched::uetuct_makespan(space.last_tile(), md));
}

TEST(PiSearchTest, SkewedDepsScheduleViaSearch) {
  // A wavefront set needs a non-trivial hyperplane: Π = (1, 0) fails
  // (Π·(1,1) fine but Π·(0,1)... ) — the search must find a feasible
  // minimal one.
  const Box space = Box::from_extents(Vec{20, 20});
  const auto r = sched::optimal_pi_uniform(
      space, {Vec{1, -1}, Vec{1, 0}, Vec{0, 1}}, 1);
  for (const Vec& d :
       std::vector<Vec>{Vec{1, -1}, Vec{1, 0}, Vec{0, 1}})
    EXPECT_GE(r.pi.dot(d), 1);
  EXPECT_EQ(r.pi, (Vec{2, 1}));  // the classic wavefront hyperplane
}

TEST(PiSearchTest, InfeasibleThrows) {
  const Box space = Box::from_extents(Vec{4, 4});
  // Opposite dependencies cannot both advance under any nonneg Π.
  EXPECT_THROW(sched::optimal_pi_uniform(space, {Vec{1, -1}, Vec{0, 1}}, 5,
                                         /*max_coeff=*/2),
               util::Error);
}

TEST(PiSearchTest, ValidatesInput) {
  EXPECT_THROW(sched::optimal_pi(Box::from_extents(Vec{4}),
                                 {Vec{1}}, {1, 2}),
               util::Error);
}
