// The staged compiler: per-stage invariant verifiers (every one has a
// negative test whose error names the failing stage), full compiles through
// pipeline::Compiler, scenario batches, and the PlanCache scopes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "tilo/core/plancache.hpp"
#include "tilo/core/recommend.hpp"
#include "tilo/loopnest/parse.hpp"
#include "tilo/obs/chrome_trace.hpp"
#include "tilo/pipeline/compiler.hpp"
#include "tilo/util/error.hpp"

namespace {

using namespace tilo;
using pipeline::Stage;
using sched::ScheduleKind;
using util::i64;

const char* kDemoSource = R"(FOR i = 0 TO 15
  FOR j = 0 TO 15
    FOR k = 0 TO 511
      A(i, j, k) = sqrt(A(i-1, j, k)) + sqrt(A(i, j-1, k)) + sqrt(A(i, j, k-1))
    ENDFOR
  ENDFOR
ENDFOR
)";

/// Runs `fn`, expects util::Error whose message contains `substr`.
template <typename Fn>
void expect_error_containing(Fn&& fn, const std::string& substr) {
  try {
    fn();
    FAIL() << "expected util::Error containing \"" << substr << "\"";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find(substr), std::string::npos)
        << "actual message: " << e.what();
  }
}

pipeline::AnalysisArtifact demo_analysis(const lat::Vec& procs) {
  const loop::LoopNest nest = loop::parse_nest(kDemoSource);
  return pipeline::run_analysis(nest, mach::MachineParams::paper_cluster(),
                                procs, std::nullopt,
                                ScheduleKind::kOverlap);
}

// ------------------------------------------------------- stage negatives

TEST(PipelineStageErrors, FrontendNamesItselfOnEmptySource) {
  expect_error_containing(
      [] { pipeline::run_frontend({"empty.loop", ""}); },
      "pipeline stage Frontend");
}

TEST(PipelineStageErrors, AnalysisRejectsNegativeDependences) {
  const loop::LoopNest nest(
      "neg", lat::Box(lat::Vec{0, 0}, lat::Vec{7, 7}),
      loop::DependenceSet({lat::Vec{1, -1}}));
  expect_error_containing(
      [&] {
        pipeline::run_analysis(nest, mach::MachineParams::paper_cluster(),
                               std::nullopt, std::nullopt,
                               ScheduleKind::kOverlap);
      },
      "pipeline stage Analysis");
}

TEST(PipelineStageErrors, AnalysisRejectsOversubscribedAutoGrid) {
  const loop::LoopNest nest = loop::parse_nest(kDemoSource);
  // 1024 processors cannot factor into the 16x16 cross-section caps.
  expect_error_containing(
      [&] {
        pipeline::run_analysis(nest, mach::MachineParams::paper_cluster(),
                               std::nullopt, i64{1024},
                               ScheduleKind::kOverlap);
      },
      "pipeline stage Analysis");
}

TEST(PipelineStageErrors, TilingVerifierRejectsNonInversePair) {
  // H = I but P = 2I: H·P = 2I != I.
  const lat::RatMat H = lat::RatMat::identity(2);
  const lat::Mat P{{2, 0}, {0, 2}};
  expect_error_containing(
      [&] { pipeline::verify_supernode_identity(Stage::kTiling, H, P); },
      "pipeline stage Tiling");
}

TEST(PipelineStageErrors, TilingRejectsNonPositiveHeight) {
  const pipeline::AnalysisArtifact analysis =
      demo_analysis(lat::Vec{4, 4, 1});
  expect_error_containing(
      [&] { pipeline::run_tiling(analysis, i64{0}, ScheduleKind::kOverlap); },
      "pipeline stage Tiling");
}

TEST(PipelineStageErrors, SchedulingVerifierRejectsNon01TileDeps) {
  expect_error_containing(
      [] {
        pipeline::verify_tile_deps_01(Stage::kScheduling,
                                      {lat::Vec{2, 0, 0}});
      },
      "pipeline stage Scheduling");
}

TEST(PipelineStageErrors, SchedulingVerifierRejectsIllegalPi) {
  // Non-overlap Π = (1, 1, 1) but a communicating dependence under the
  // overlapping schedule needs Π·d >= 2.
  expect_error_containing(
      [] {
        pipeline::verify_pi_legality(Stage::kScheduling, lat::Vec{1, 1, 1},
                                     {lat::Vec{1, 0, 0}},
                                     ScheduleKind::kOverlap, 2);
      },
      "pipeline stage Scheduling");
}

TEST(PipelineStageErrors, SchedulingVerifierRejectsCausalityViolation) {
  expect_error_containing(
      [] {
        pipeline::verify_pi_legality(Stage::kScheduling, lat::Vec{0, 0, 1},
                                     {lat::Vec{1, 0, 0}},
                                     ScheduleKind::kNonOverlap, 2);
      },
      "pipeline stage Scheduling");
}

TEST(PipelineStageErrors, LoweringVerifierRejectsScheduleLengthMismatch) {
  const pipeline::AnalysisArtifact analysis =
      demo_analysis(lat::Vec{4, 4, 1});
  const pipeline::TilingArtifact tiling =
      pipeline::run_tiling(analysis, i64{64}, ScheduleKind::kOverlap);
  const pipeline::ScheduleArtifact schedule =
      pipeline::run_scheduling(analysis, tiling, ScheduleKind::kOverlap);
  const exec::TilePlan plan =
      analysis.problem.plan(64, ScheduleKind::kOverlap);
  expect_error_containing(
      [&] {
        pipeline::verify_lowered_plan(Stage::kLowering, plan, tiling.tiling,
                                      analysis.mapped_dim,
                                      analysis.problem.procs,
                                      schedule.length + 1);
      },
      "pipeline stage Lowering");
}

TEST(PipelineStageErrors, LoweringVerifierRejectsForeignTiling) {
  const pipeline::AnalysisArtifact analysis =
      demo_analysis(lat::Vec{4, 4, 1});
  const pipeline::TilingArtifact tiling =
      pipeline::run_tiling(analysis, i64{64}, ScheduleKind::kOverlap);
  const pipeline::ScheduleArtifact schedule =
      pipeline::run_scheduling(analysis, tiling, ScheduleKind::kOverlap);
  // A plan built at a different height than the Tiling stage chose.
  const exec::TilePlan plan =
      analysis.problem.plan(32, ScheduleKind::kOverlap);
  expect_error_containing(
      [&] {
        pipeline::verify_lowered_plan(Stage::kLowering, plan, tiling.tiling,
                                      analysis.mapped_dim,
                                      analysis.problem.procs,
                                      schedule.length);
      },
      "pipeline stage Lowering");
}

TEST(PipelineStageErrors, BackendRejectsFunctionalRunWithoutKernel) {
  // A nest without a body cannot execute functionally.
  const loop::LoopNest bare("bare",
                            lat::Box(lat::Vec{0, 0}, lat::Vec{7, 15}),
                            loop::DependenceSet({lat::Vec{1, 0}}));
  pipeline::CompileOptions opts;
  opts.procs = lat::Vec{1, 1};
  opts.functional = true;
  expect_error_containing(
      [&] { pipeline::Compiler(opts).compile_nest(bare); },
      "pipeline stage Backend");
}

TEST(PipelineStageErrors, StoreNamesConsumingStageWhenArtifactMissing) {
  const pipeline::ArtifactStore store;
  expect_error_containing([&] { store.tiling(Stage::kScheduling); },
                          "pipeline stage Scheduling");
  expect_error_containing([&] { store.plan(); }, "no plan artifact");
}

// ----------------------------------------------------------- full compiles

TEST(PipelineCompiler, CompileSourceProducesEveryArtifact) {
  pipeline::CompileOptions opts;
  opts.procs = lat::Vec{4, 4, 1};
  opts.height = i64{64};
  const pipeline::ArtifactStore out =
      pipeline::Compiler(opts).compile_source("demo", kDemoSource);
  EXPECT_TRUE(out.has_source());
  EXPECT_TRUE(out.has_nest());
  EXPECT_TRUE(out.has_analysis());
  EXPECT_TRUE(out.has_tiling());
  EXPECT_TRUE(out.has_schedule());
  EXPECT_TRUE(out.has_plan());
  EXPECT_TRUE(out.has_backend());
  EXPECT_EQ(out.tiling().V, 64);
  EXPECT_FALSE(out.tiling().analytic_height);
  EXPECT_EQ(out.schedule().length, out.plan().plan->schedule_length());
  ASSERT_TRUE(out.backend().run.has_value());

  // The pipeline's result matches a direct plan + run of the same problem.
  const core::Problem& problem = out.analysis().problem;
  const exec::TilePlan direct = problem.plan(64, ScheduleKind::kOverlap);
  const exec::RunResult reference =
      exec::run_plan(problem.nest, direct, problem.machine);
  EXPECT_EQ(out.backend().run->completion, reference.completion);
}

TEST(PipelineCompiler, MatchesRecommendPlan) {
  const loop::LoopNest nest = loop::parse_nest(kDemoSource);
  const mach::MachineParams machine = mach::MachineParams::paper_cluster();
  const core::Recommendation rec = core::recommend_plan(nest, machine, 16);

  pipeline::CompileOptions opts;
  opts.machine = machine;
  opts.auto_procs = i64{16};
  opts.simulate = false;
  const pipeline::ArtifactStore out =
      pipeline::Compiler(opts).compile_nest(nest);
  EXPECT_TRUE(out.analysis().auto_grid);
  EXPECT_EQ(out.analysis().problem.procs, rec.problem.procs);
  EXPECT_EQ(out.tiling().V, rec.V);
  EXPECT_EQ(out.plan().predicted_seconds, rec.predicted_seconds);
}

TEST(PipelineCompiler, StageSpansReachTheSink) {
  obs::ChromeTraceSink sink;
  pipeline::CompileOptions opts;
  opts.procs = lat::Vec{4, 4, 1};
  opts.height = i64{64};
  opts.sink = &sink;
  pipeline::Compiler(opts).compile_source("demo", kDemoSource);
  std::ostringstream os;
  sink.write(os);
  const std::string trace = os.str();
  for (const char* stage : {"pipeline.Frontend", "pipeline.Analysis",
                            "pipeline.Tiling", "pipeline.Scheduling",
                            "pipeline.Lowering", "pipeline.Backend"})
    EXPECT_NE(trace.find(stage), std::string::npos) << stage;
}

// --------------------------------------------------------------- scenarios

pipeline::ScenarioFile three_workload_scenario() {
  const std::string json = std::string(R"({"tilo": "scenario", "version": 1,
    "workloads": [
      {"name": "wl_overlap", "source": )") +
                           pipeline::Json::string(kDemoSource).dump() +
                           R"(, "procs": [4, 4, 1], "height": 64},
      {"name": "wl_nonoverlap", "source": )" +
                           pipeline::Json::string(kDemoSource).dump() +
                           R"(, "procs": [2, 2, 1], "height": 32,
       "schedule": "nonoverlap"},
      {"name": "wl_auto", "source": )" +
                           pipeline::Json::string(kDemoSource).dump() +
                           R"(, "auto_procs": 8}]})";
  return pipeline::parse_scenario(json);
}

TEST(PipelineScenario, OneInvocationCompilesThreeWorkloadsWithSpans) {
  obs::ChromeTraceSink sink;
  core::PlanCache cache(core::PlanCache::Scope::kMultiProblem);
  pipeline::CompileOptions opts;
  opts.plan_cache = &cache;
  opts.sink = &sink;
  const std::vector<pipeline::ArtifactStore> stores =
      pipeline::Compiler(opts).compile(three_workload_scenario());
  ASSERT_EQ(stores.size(), 3u);
  for (const pipeline::ArtifactStore& store : stores) {
    EXPECT_TRUE(store.has_backend());
    ASSERT_TRUE(store.backend().run.has_value());
    EXPECT_GT(store.backend().run->seconds, 0.0);
  }
  EXPECT_EQ(stores[0].schedule().kind, ScheduleKind::kOverlap);
  EXPECT_EQ(stores[1].schedule().kind, ScheduleKind::kNonOverlap);
  EXPECT_TRUE(stores[2].analysis().auto_grid);
  EXPECT_GT(cache.misses(), 0u);

  // Per-workload, per-stage spans are visible in the Chrome trace.
  std::ostringstream os;
  sink.write(os);
  const std::string trace = os.str();
  for (const char* span :
       {"pipeline.Frontend [wl_overlap]", "pipeline.Lowering [wl_overlap]",
        "pipeline.Backend [wl_nonoverlap]", "pipeline.Analysis [wl_auto]"})
    EXPECT_NE(trace.find(span), std::string::npos) << span;
}

TEST(PipelineScenario, WorkloadErrorsNameTheWorkloadAndStage) {
  const pipeline::ScenarioFile scenario = pipeline::parse_scenario(
      R"({"tilo": "scenario", "version": 1,
          "workloads": [{"name": "bad", "source": "not a loop nest"}]})");
  expect_error_containing(
      [&] { pipeline::Compiler().compile(scenario); }, "workload 'bad'");
}

TEST(PipelineScenario, RejectsWrongEnvelope) {
  expect_error_containing(
      [] { pipeline::parse_scenario(R"({"tilo": "plan", "version": 1})"); },
      "scenario");
  expect_error_containing(
      [] {
        pipeline::parse_scenario(
            R"({"tilo": "scenario", "version": 99, "workloads": []})");
      },
      "version");
}

// -------------------------------------------------------- plan cache scopes

TEST(PlanCacheScope, MultiProblemServesSeveralProblems) {
  core::PlanCache cache(core::PlanCache::Scope::kMultiProblem);
  const core::Problem a = core::paper_problem_i();
  const core::Problem b = core::paper_problem_iii();
  const auto pa = cache.get(a, 64, ScheduleKind::kOverlap);
  const auto pb = cache.get(b, 64, ScheduleKind::kOverlap);
  // Different problems get different plans, and each is cached under its
  // own identity: a second get is a hit that returns the same object.
  EXPECT_NE(pa->space.num_tiles(), pb->space.num_tiles());
  EXPECT_EQ(cache.get(a, 64, ScheduleKind::kOverlap).get(), pa.get());
  EXPECT_EQ(cache.get(b, 64, ScheduleKind::kOverlap).get(), pb.get());
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  // The kind-sibling copy-flip still works per problem.
  const auto pa_non = cache.get(a, 64, ScheduleKind::kNonOverlap);
  EXPECT_EQ(pa_non->space.num_tiles(), pa->space.num_tiles());
  EXPECT_EQ(cache.hits(), 3u);
}

TEST(PlanCacheScope, SingleProblemStillRejectsAForeignProblem) {
  core::PlanCache cache;  // default scope
  EXPECT_EQ(cache.scope(), core::PlanCache::Scope::kSingleProblem);
  cache.get(core::paper_problem_i(), 64, ScheduleKind::kOverlap);
  EXPECT_THROW(
      cache.get(core::paper_problem_ii(), 64, ScheduleKind::kOverlap),
      util::Error);
}

}  // namespace
