// Unit tests for tilo::sim — the discrete-event engine and FIFO resources.
#include <gtest/gtest.h>

#include <vector>

#include "tilo/sim/engine.hpp"
#include "tilo/sim/resource.hpp"

using namespace tilo;
using sim::Engine;
using sim::Resource;
using sim::Time;

TEST(EngineTest, EventsRunInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.at(30, [&] { order.push_back(3); });
  e.at(10, [&] { order.push_back(1); });
  e.at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(EngineTest, EqualTimesRunInSchedulingOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.at(5, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EngineTest, HandlersMayScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  e.at(1, [&] {
    ++fired;
    e.after(4, [&] {
      ++fired;
      EXPECT_EQ(e.now(), 5);
    });
  });
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, SchedulingIntoThePastThrows) {
  Engine e;
  e.at(10, [&] { EXPECT_THROW(e.at(5, [] {}), util::Error); });
  e.run();
  EXPECT_THROW(Engine().after(-1, [] {}), util::Error);
}

TEST(EngineTest, ExceptionsPropagateOutOfRun) {
  Engine e;
  e.at(1, [] { throw util::Error("boom"); });
  EXPECT_THROW(e.run(), util::Error);
}

TEST(EngineTest, SecondsConversionRoundTrips) {
  EXPECT_EQ(sim::from_seconds(1.5e-6), 1500);
  EXPECT_DOUBLE_EQ(sim::to_seconds(2'000'000'000), 2.0);
  EXPECT_THROW(sim::from_seconds(-1.0), util::Error);
}

TEST(ResourceTest, SerializesOverlappingRequests) {
  Engine e;
  Resource r(e, "dma");
  std::vector<Time> completions;
  e.at(0, [&] {
    r.acquire(0, 100, [&] { completions.push_back(e.now()); });
    r.acquire(0, 50, [&] { completions.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], 100);  // FIFO: first request first
  EXPECT_EQ(completions[1], 150);
  EXPECT_EQ(r.busy_time(), 150);
}

TEST(ResourceTest, IdleResourceStartsAtEarliest) {
  Engine e;
  Resource r(e, "nic");
  Time done = -1;
  e.at(0, [&] {
    const auto grant = r.acquire(40, 10, [&] { done = e.now(); });
    EXPECT_EQ(grant.start, 40);
    EXPECT_EQ(grant.completion, 50);
  });
  e.run();
  EXPECT_EQ(done, 50);
}

TEST(ResourceTest, GapsDoNotAccumulateBusyTime) {
  Engine e;
  Resource r(e, "bus");
  e.at(0, [&] { r.acquire(0, 10, [] {}); });
  e.at(100, [&] { r.acquire(100, 10, [] {}); });
  e.run();
  EXPECT_EQ(r.busy_time(), 20);
  EXPECT_EQ(r.free_at(), 110);
}

TEST(ResourceTest, NegativeDurationThrows) {
  Engine e;
  Resource r(e, "x");
  EXPECT_THROW(r.acquire(0, -1, [] {}), util::Error);
}
