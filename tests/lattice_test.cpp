// Unit tests for tilo::lat — integer vectors/matrices, exact rationals,
// rational matrices (inverse/determinant) and boxes.
#include <gtest/gtest.h>

#include <set>

#include "tilo/lattice/box.hpp"
#include "tilo/lattice/mat.hpp"
#include "tilo/lattice/ratmat.hpp"
#include "tilo/lattice/rational.hpp"
#include "tilo/lattice/vec.hpp"
#include "tilo/util/rng.hpp"

using tilo::lat::Box;
using tilo::lat::Mat;
using tilo::lat::Rat;
using tilo::lat::RatMat;
using tilo::lat::RatVec;
using tilo::lat::Vec;
using tilo::util::i64;

// ---------------------------------------------------------------- Vec ----

TEST(VecTest, ArithmeticIsComponentwise) {
  const Vec a{1, 2, 3};
  const Vec b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec{3, 3, 3}));
  EXPECT_EQ(a * 3, (Vec{3, 6, 9}));
  EXPECT_EQ(-a, (Vec{-1, -2, -3}));
}

TEST(VecTest, DotProduct) {
  EXPECT_EQ((Vec{1, 2, 3}).dot(Vec{4, 5, 6}), 32);
  EXPECT_EQ((Vec{1, 1}).dot(Vec{-1, 1}), 0);
}

TEST(VecTest, SizeMismatchThrows) {
  EXPECT_THROW(Vec({1, 2}) + Vec({1, 2, 3}), tilo::util::Error);
  EXPECT_THROW((Vec{1, 2}).dot(Vec{1}), tilo::util::Error);
}

TEST(VecTest, LexOrder) {
  EXPECT_TRUE((Vec{0, 5}).lex_less(Vec{1, 0}));
  EXPECT_TRUE((Vec{1, 0}).lex_less(Vec{1, 1}));
  EXPECT_FALSE((Vec{1, 1}).lex_less(Vec{1, 1}));
  EXPECT_TRUE((Vec{0, 0, 1}).lex_positive());
  EXPECT_TRUE((Vec{1, -5, 0}).lex_positive());
  EXPECT_FALSE((Vec{0, -1, 2}).lex_positive());
  EXPECT_FALSE((Vec{0, 0, 0}).lex_positive());
}

TEST(VecTest, Predicates) {
  EXPECT_TRUE((Vec{0, 0}).is_zero());
  EXPECT_FALSE((Vec{0, 1}).is_zero());
  EXPECT_TRUE((Vec{0, 2}).is_nonneg());
  EXPECT_FALSE((Vec{0, -1}).is_nonneg());
  EXPECT_EQ((Vec{1, 2, 3}).sum(), 6);
}

TEST(VecTest, StreamFormat) { EXPECT_EQ((Vec{1, -2}).str(), "(1, -2)"); }

// ---------------------------------------------------------------- Mat ----

TEST(MatTest, IdentityAndDiagonal) {
  EXPECT_EQ(Mat::identity(2), (Mat{{1, 0}, {0, 1}}));
  EXPECT_EQ(Mat::diagonal(Vec{2, 3}), (Mat{{2, 0}, {0, 3}}));
}

TEST(MatTest, MultiplyMatchesHandComputation) {
  const Mat a{{1, 2}, {3, 4}};
  const Mat b{{5, 6}, {7, 8}};
  EXPECT_EQ(a * b, (Mat{{19, 22}, {43, 50}}));
  EXPECT_EQ(a * Vec({1, 1}), (Vec{3, 7}));
}

TEST(MatTest, TransposeRoundTrip) {
  const Mat a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(a.transpose().transpose(), a);
  EXPECT_EQ(a.transpose(), (Mat{{1, 4}, {2, 5}, {3, 6}}));
}

TEST(MatTest, DeterminantSmallCases) {
  EXPECT_EQ((Mat{{3}}).det(), 3);
  EXPECT_EQ((Mat{{1, 2}, {3, 4}}).det(), -2);
  EXPECT_EQ((Mat{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}).det(), 24);
  EXPECT_EQ((Mat{{1, 2}, {2, 4}}).det(), 0);
  // Needs a row swap to find a pivot.
  EXPECT_EQ((Mat{{0, 1}, {1, 0}}).det(), -1);
}

TEST(MatTest, DeterminantOfProductIsProductOfDeterminants) {
  tilo::util::Rng rng(123);
  for (int iter = 0; iter < 50; ++iter) {
    Mat a(3, 3);
    Mat b(3, 3);
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) {
        a(r, c) = rng.uniform(-4, 4);
        b(r, c) = rng.uniform(-4, 4);
      }
    EXPECT_EQ((a * b).det(), a.det() * b.det());
  }
}

TEST(MatTest, WithoutRowAndColumn) {
  const Mat a{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  EXPECT_EQ(a.without_col(1), (Mat{{1, 3}, {4, 6}, {7, 9}}));
  EXPECT_EQ(a.without_row(0), (Mat{{4, 5, 6}, {7, 8, 9}}));
}

TEST(MatTest, FromColumnsLaysOutByColumn) {
  const Mat d = Mat::from_columns({Vec{1, 0}, Vec{1, 1}});
  EXPECT_EQ(d, (Mat{{1, 1}, {0, 1}}));
  EXPECT_EQ(d.col(1), (Vec{1, 1}));
  EXPECT_EQ(d.row(0), (Vec{1, 1}));
}

TEST(MatTest, IsNonneg) {
  EXPECT_TRUE((Mat{{0, 1}, {2, 3}}).is_nonneg());
  EXPECT_FALSE((Mat{{0, 1}, {-1, 3}}).is_nonneg());
}

// ---------------------------------------------------------------- Rat ----

TEST(RatTest, NormalizesSignAndGcd) {
  EXPECT_EQ(Rat(2, 4), Rat(1, 2));
  EXPECT_EQ(Rat(1, -2), Rat(-1, 2));
  EXPECT_EQ(Rat(-3, -6), Rat(1, 2));
  EXPECT_EQ(Rat(0, 7), Rat(0));
  EXPECT_THROW(Rat(1, 0), tilo::util::Error);
}

TEST(RatTest, Arithmetic) {
  EXPECT_EQ(Rat(1, 2) + Rat(1, 3), Rat(5, 6));
  EXPECT_EQ(Rat(1, 2) - Rat(1, 3), Rat(1, 6));
  EXPECT_EQ(Rat(2, 3) * Rat(3, 4), Rat(1, 2));
  EXPECT_EQ(Rat(1, 2) / Rat(1, 4), Rat(2));
  EXPECT_THROW(Rat(1) / Rat(0), tilo::util::Error);
}

TEST(RatTest, ComparisonsAndFloor) {
  EXPECT_LT(Rat(1, 3), Rat(1, 2));
  EXPECT_LT(Rat(-1, 2), Rat(-1, 3));
  EXPECT_EQ(Rat(7, 2).floor(), 3);
  EXPECT_EQ(Rat(-7, 2).floor(), -4);
  EXPECT_EQ(Rat(-7, 2).ceil(), -3);
  EXPECT_EQ(Rat(6, 3).as_integer(), 2);
  EXPECT_THROW(Rat(1, 2).as_integer(), tilo::util::Error);
}

TEST(RatTest, Format) {
  EXPECT_EQ(Rat(3, 6).str(), "1/2");
  EXPECT_EQ(Rat(4, 2).str(), "2");
  EXPECT_EQ(Rat(-1, 3).str(), "-1/3");
}

// ------------------------------------------------------------- RatMat ----

TEST(RatMatTest, InverseTimesSelfIsIdentity) {
  const Mat p{{10, 0}, {0, 10}};
  const RatMat h = RatMat(p).inverse();
  EXPECT_EQ(h * RatMat(p), RatMat::identity(2));
  EXPECT_EQ(h(0, 0), Rat(1, 10));
}

TEST(RatMatTest, InverseOfSkewedMatrix) {
  // P = [[2, 1], [0, 2]] -> H = [[1/2, -1/4], [0, 1/2]].
  const RatMat h = RatMat(Mat{{2, 1}, {0, 2}}).inverse();
  EXPECT_EQ(h(0, 0), Rat(1, 2));
  EXPECT_EQ(h(0, 1), Rat(-1, 4));
  EXPECT_EQ(h(1, 0), Rat(0));
  EXPECT_EQ(h(1, 1), Rat(1, 2));
}

TEST(RatMatTest, SingularInverseThrows) {
  EXPECT_THROW(RatMat(Mat{{1, 2}, {2, 4}}).inverse(), tilo::util::Error);
}

TEST(RatMatTest, DeterminantMatchesIntegerPath) {
  tilo::util::Rng rng(9);
  for (int iter = 0; iter < 30; ++iter) {
    Mat a(3, 3);
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.uniform(-5, 5);
    EXPECT_EQ(RatMat(a).det(), Rat(a.det()));
  }
}

TEST(RatMatTest, RandomInverseRoundTrip) {
  tilo::util::Rng rng(77);
  int tested = 0;
  while (tested < 20) {
    Mat a(3, 3);
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.uniform(-3, 3);
    if (a.det() == 0) continue;
    ++tested;
    EXPECT_EQ(RatMat(a).inverse() * RatMat(a), RatMat::identity(3));
  }
}

TEST(RatVecTest, FloorIsComponentwise) {
  RatVec v(std::vector<Rat>{Rat(7, 2), Rat(-7, 2), Rat(3)});
  EXPECT_EQ(v.floor(), (Vec{3, -4, 3}));
  EXPECT_FALSE(v.is_integral());
  EXPECT_TRUE(RatVec(Vec{1, 2}).is_integral());
}

// ---------------------------------------------------------------- Box ----

TEST(BoxTest, ExtentsAndVolume) {
  const Box b(Vec{0, 0}, Vec{3, 4});
  EXPECT_EQ(b.extent(0), 4);
  EXPECT_EQ(b.extent(1), 5);
  EXPECT_EQ(b.volume(), 20);
  EXPECT_FALSE(b.empty());
}

TEST(BoxTest, EmptyWhenHiBelowLo) {
  const Box b(Vec{2, 0}, Vec{1, 5});
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.volume(), 0);
  EXPECT_FALSE(b.contains(Vec{2, 0}));
}

TEST(BoxTest, FromExtents) {
  const Box b = Box::from_extents(Vec{3, 2});
  EXPECT_EQ(b.lo(), (Vec{0, 0}));
  EXPECT_EQ(b.hi(), (Vec{2, 1}));
}

TEST(BoxTest, IntersectAndShift) {
  const Box a(Vec{0, 0}, Vec{5, 5});
  const Box b(Vec{3, 4}, Vec{9, 9});
  const Box c = a.intersect(b);
  EXPECT_EQ(c.lo(), (Vec{3, 4}));
  EXPECT_EQ(c.hi(), (Vec{5, 5}));
  EXPECT_EQ(a.shifted(Vec{1, -1}).lo(), (Vec{1, -1}));
  EXPECT_TRUE(a.intersect(Box(Vec{7, 7}, Vec{9, 9})).empty());
}

TEST(BoxTest, ForEachPointVisitsRowMajorOnce) {
  const Box b(Vec{0, 0}, Vec{1, 2});
  std::vector<Vec> seen;
  b.for_each_point([&](const Vec& p) { seen.push_back(p); });
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.front(), (Vec{0, 0}));
  EXPECT_EQ(seen[1], (Vec{0, 1}));  // last dimension fastest
  EXPECT_EQ(seen.back(), (Vec{1, 2}));
  std::set<std::vector<i64>> uniq;
  for (const Vec& p : seen) uniq.insert(p.data());
  EXPECT_EQ(uniq.size(), seen.size());
}

TEST(BoxTest, LinearIndexConsistentWithIterationOrder) {
  const Box b(Vec{-1, 2}, Vec{1, 4});
  i64 expect = 0;
  b.for_each_point([&](const Vec& p) {
    EXPECT_EQ(b.linear_index(p), expect);
    ++expect;
  });
  EXPECT_EQ(expect, b.volume());
}

TEST(BoxTest, ContainsRespectsInclusiveBounds) {
  const Box b(Vec{0, 0}, Vec{2, 2});
  EXPECT_TRUE(b.contains(Vec{0, 0}));
  EXPECT_TRUE(b.contains(Vec{2, 2}));
  EXPECT_FALSE(b.contains(Vec{3, 0}));
  EXPECT_FALSE(b.contains(Vec{0, -1}));
}

TEST(BoxTest, ClampedDim) {
  const Box b(Vec{0, 0}, Vec{9, 9});
  const Box c = b.clamped_dim(1, 3, 100);
  EXPECT_EQ(c.lo(), (Vec{0, 3}));
  EXPECT_EQ(c.hi(), (Vec{9, 9}));
}

TEST(BoxTest, OutOfBoxLinearIndexThrows) {
  const Box b(Vec{0}, Vec{3});
  EXPECT_THROW(b.linear_index(Vec{4}), tilo::util::Error);
}
