// Property-based (parameterized) suites: random loop nests, random legal
// tilings, both schedules — every distributed execution must match the
// sequential reference exactly, schedules must respect dependencies, and
// the cost formulas must stay consistent under change of representation.
#include <gtest/gtest.h>

#include <algorithm>

#include "tilo/exec/regions.hpp"
#include "tilo/exec/run.hpp"
#include "tilo/loopnest/workloads.hpp"
#include "tilo/sched/tiled.hpp"
#include "tilo/sched/uetuct.hpp"
#include "tilo/tiling/cost.hpp"
#include "tilo/core/predict.hpp"
#include "tilo/core/problem.hpp"
#include "tilo/util/rng.hpp"

using namespace tilo;
using lat::Rat;
using lat::Vec;
using loop::LoopNest;
using sched::ScheduleKind;
using tile::RectTiling;
using tile::TiledSpace;
using util::i64;

namespace {

mach::MachineParams tiny_params() {
  mach::MachineParams p;
  p.t_c = 1e-6;
  p.t_t = 0.02e-6;
  p.bytes_per_element = 8;
  p.wire_latency = 1e-6;
  p.fill_mpi_buffer = mach::AffineCost{3e-6, 0.0};
  p.fill_kernel_buffer = mach::AffineCost{3e-6, 0.0};
  return p;
}

/// Draws a random nest plus a random legal tiling and processor grid.
struct RandomCase {
  LoopNest nest;
  Vec sides;
  Vec procs;
  std::size_t mapped;
};

RandomCase draw_case(util::Rng& rng, std::size_t dims) {
  loop::RandomNestOptions opts;
  opts.dims = dims;
  opts.num_deps = static_cast<std::size_t>(rng.uniform(1, 4));
  opts.max_dep_component = 2;
  opts.min_extent = 8;
  opts.max_extent = dims == 2 ? 30 : 18;
  opts.nonneg_deps = true;  // rectangular tiling legality
  LoopNest nest = loop::random_nest(rng, opts);

  Vec sides(dims);
  Vec procs(dims, 1);
  for (std::size_t d = 0; d < dims; ++d) {
    const i64 min_side = nest.deps().max_component(d) + 1;
    sides[d] = rng.uniform(min_side, std::max<i64>(min_side, 6));
  }
  const std::size_t mapped = static_cast<std::size_t>(
      rng.uniform(0, static_cast<i64>(dims) - 1));
  for (std::size_t d = 0; d < dims; ++d) {
    if (d == mapped) continue;
    const i64 columns = util::ceil_div(nest.domain().extent(d), sides[d]);
    procs[d] = rng.uniform(1, std::min<i64>(columns, 3));
  }
  return RandomCase{std::move(nest), std::move(sides), std::move(procs),
                    mapped};
}

}  // namespace

class DistributedEqualsSequential
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DistributedEqualsSequential, BothSchedules) {
  const auto [seed, dims] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 7919u + 13u);
  const RandomCase c = draw_case(rng, static_cast<std::size_t>(dims));
  for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
    const exec::TilePlan plan = exec::make_plan_explicit(
        c.nest, RectTiling(c.sides), kind, c.mapped, c.procs);
    const double err = exec::run_and_validate(c.nest, plan, tiny_params());
    EXPECT_DOUBLE_EQ(err, 0.0)
        << "seed " << seed << " dims " << dims << " sides " << c.sides.str()
        << " procs " << c.procs.str() << " mapped " << c.mapped << " deps "
        << c.nest.deps().str() << " kind " << static_cast<int>(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomNests, DistributedEqualsSequential,
    ::testing::Combine(::testing::Range(0, 12), ::testing::Values(2, 3)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_dims" +
             std::to_string(std::get<1>(info.param));
    });

class SchedulePropertiesTest : public ::testing::TestWithParam<int> {};

TEST_P(SchedulePropertiesTest, OverlapScheduleRespectsCommGap) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729u + 7u);
  const RandomCase c = draw_case(rng, 3);
  const TiledSpace space(c.nest, RectTiling(c.sides));
  const Vec pi = sched::overlap_pi(3, c.mapped);
  for (const Vec& e : space.tile_deps()) {
    bool communicates = false;
    for (std::size_t d = 0; d < 3; ++d)
      if (d != c.mapped && e[d] != 0) communicates = true;
    if (communicates) {
      EXPECT_GE(pi.dot(e), 2) << "tile dep " << e.str();
    } else {
      EXPECT_GE(pi.dot(e), 1);
    }
  }
}

TEST_P(SchedulePropertiesTest, VCommRectMatchesRationalFormula) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337u + 3u);
  const RandomCase c = draw_case(rng, 3);
  const RectTiling rt(c.sides);
  const tile::Supernode sn = rt.as_supernode();
  EXPECT_EQ(Rat(tile::v_comm_total_rect(rt, c.nest.deps())),
            tile::v_comm_total(sn, c.nest.deps()));
  for (std::size_t x = 0; x < 3; ++x)
    EXPECT_EQ(Rat(tile::v_comm_mapped_rect(rt, c.nest.deps(), x)),
              tile::v_comm_mapped(sn, c.nest.deps(), x));
}

TEST_P(SchedulePropertiesTest, MessageBytesBoundedByVComm) {
  // Interior tiles ship exactly the eq. (2) volume when all tile columns
  // sit on distinct processors; totals over boundary tiles only shrink.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271u + 1u);
  const RandomCase c = draw_case(rng, 3);
  const TiledSpace space(c.nest, RectTiling(c.sides));
  const i64 v_total = tile::v_comm_total_rect(RectTiling(c.sides),
                                              c.nest.deps());
  space.for_each_tile([&](const Vec& t) {
    i64 points = 0;
    for (const exec::TileComm& out : exec::outgoing(space, t))
      points += out.points;
    EXPECT_LE(points, v_total) << "tile " << t.str();
  });
}

TEST_P(SchedulePropertiesTest, ExecutorSendsExactlyTheGeometricMessages) {
  // The timed run must send precisely the messages the region geometry
  // prescribes — no more (duplicate sends) and no fewer (lost halos).
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7717u + 5u);
  const RandomCase c = draw_case(rng, 3);
  const exec::TilePlan plan = exec::make_plan_explicit(
      c.nest, RectTiling(c.sides), ScheduleKind::kOverlap, c.mapped,
      c.procs);
  i64 expect_messages = 0;
  i64 expect_bytes = 0;
  plan.space.for_each_tile([&](const Vec& t) {
    for (const exec::TileComm& out : exec::outgoing(plan.space, t)) {
      if (plan.mapping.rank_of_tile(t + out.offset) ==
          plan.mapping.rank_of_tile(t))
        continue;
      ++expect_messages;
      expect_bytes += out.points * tiny_params().bytes_per_element;
    }
  });
  const exec::RunResult r = exec::run_plan(c.nest, plan, tiny_params());
  EXPECT_EQ(r.messages, expect_messages);
  EXPECT_EQ(r.bytes, expect_bytes);
}

TEST_P(SchedulePropertiesTest, CpuBoundPredictionTracksSimulation) {
  // In the CPU-bound regime eq. (4)/(5) should track the simulation for a
  // range of grains on the paper geometry (within border-effect slack).
  const i64 V = 32 << (GetParam() % 4);  // 32, 64, 128, 256
  const core::Problem p{loop::stencil3d_nest(16, 16, 4096),
                        mach::MachineParams::paper_cluster(),
                        Vec{4, 4, 1}};
  const exec::TilePlan plan = p.plan(V, ScheduleKind::kOverlap);
  const double predicted = core::predict_completion(plan, p.machine);
  const double simulated = exec::run_plan(p.nest, plan, p.machine).seconds;
  EXPECT_NEAR(simulated, predicted, 0.15 * predicted) << "V = " << V;
}

TEST_P(SchedulePropertiesTest, UetUctClosedFormMatchesDp) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537u + 11u);
  Vec u(3);
  for (std::size_t d = 0; d < 3; ++d) u[d] = rng.uniform(0, 6);
  const std::size_t md = static_cast<std::size_t>(rng.uniform(0, 2));
  EXPECT_EQ(sched::uetuct_makespan_dp(u, md), sched::uetuct_makespan(u, md));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulePropertiesTest,
                         ::testing::Range(0, 16));

class TimingMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(TimingMonotonicityTest, OverlapNeverLosesOnStencil) {
  // For the paper's kernel family the overlapping schedule should never be
  // slower than the non-overlapping one at the same grain (it strictly
  // dominates per-step cost; schedule length grows but per-step savings
  // dominate at practical sizes).
  const int v_shift = GetParam();
  const i64 V = i64{4} << v_shift;
  const LoopNest nest = loop::stencil3d_nest(8, 8, 128);
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  const auto over = exec::make_plan(nest, RectTiling(Vec{4, 4, V}),
                                    ScheduleKind::kOverlap);
  const auto non = exec::make_plan(nest, RectTiling(Vec{4, 4, V}),
                                   ScheduleKind::kNonOverlap);
  EXPECT_LT(exec::run_plan(nest, over, p).seconds,
            exec::run_plan(nest, non, p).seconds)
      << "V = " << V;
}

INSTANTIATE_TEST_SUITE_P(TileHeights, TimingMonotonicityTest,
                         ::testing::Range(0, 6));  // V = 4 .. 128
