// Unit tests for tilo::tile — the supernode transformation, rectangular
// tilings, the tiled space with partial boundary tiles, communication
// volumes (paper eqs. 1 and 2) and communication-minimal shapes.
#include <gtest/gtest.h>

#include <set>

#include "tilo/loopnest/workloads.hpp"
#include "tilo/tiling/cost.hpp"
#include "tilo/tiling/rect.hpp"
#include "tilo/tiling/shape.hpp"
#include "tilo/tiling/supernode.hpp"
#include "tilo/tiling/tilespace.hpp"

using namespace tilo;
using lat::Box;
using lat::Mat;
using lat::Rat;
using lat::RatMat;
using lat::Vec;
using loop::DependenceSet;
using tile::RectTiling;
using tile::Supernode;
using tile::TiledSpace;
using util::i64;

// ----------------------------------------------------------- Supernode ----

TEST(SupernodeTest, FromSidesInvertsP) {
  const Supernode sn = Supernode::from_sides(Mat::diagonal(Vec{10, 10}));
  EXPECT_EQ(sn.tile_volume(), 100);
  EXPECT_EQ(sn.H()(0, 0), Rat(1, 10));
  EXPECT_EQ(sn.tile_of(Vec{25, 7}), (Vec{2, 0}));
  EXPECT_EQ(sn.local_of(Vec{25, 7}), (Vec{5, 7}));
  EXPECT_EQ(sn.tile_origin(Vec{2, 0}), (Vec{20, 0}));
}

TEST(SupernodeTest, NegativeCoordinatesFloorCorrectly) {
  const Supernode sn = Supernode::from_sides(Mat::diagonal(Vec{4, 4}));
  EXPECT_EQ(sn.tile_of(Vec{-1, -5}), (Vec{-1, -2}));
  EXPECT_EQ(sn.local_of(Vec{-1, -5}), (Vec{3, 3}));
}

TEST(SupernodeTest, TransformationRoundTrip) {
  // j == tile_origin(tile_of(j)) + local_of(j), local in [0, sides).
  const Supernode sn = Supernode::from_sides(Mat{{3, 1}, {0, 3}});
  for (i64 x = -6; x <= 6; ++x)
    for (i64 y = -6; y <= 6; ++y) {
      const Vec j{x, y};
      const Vec t = sn.tile_of(j);
      const Vec l = sn.local_of(j);
      EXPECT_EQ(sn.tile_origin(t) + l, j);
    }
}

TEST(SupernodeTest, SingularSidesRejected) {
  EXPECT_THROW(Supernode::from_sides(Mat{{1, 2}, {2, 4}}), util::Error);
}

TEST(SupernodeTest, FromHRequiresIntegralInverse) {
  // H = [[1/2, 0], [0, 1/3]] -> P = diag(2, 3): fine.
  RatMat h(2, 2);
  h(0, 0) = Rat(1, 2);
  h(1, 1) = Rat(1, 3);
  EXPECT_NO_THROW(Supernode::from_h(h));
  // H = [[2/3, 0], [0, 1]] -> P = diag(3/2, 1): not a lattice tiling.
  RatMat bad(2, 2);
  bad(0, 0) = Rat(2, 3);
  bad(1, 1) = Rat(1);
  EXPECT_THROW(Supernode::from_h(bad), util::Error);
}

TEST(SupernodeTest, LegalityIsHDNonneg) {
  const Supernode rect = Supernode::from_sides(Mat::diagonal(Vec{4, 4}));
  EXPECT_TRUE(rect.is_legal(DependenceSet({Vec{1, 0}, Vec{0, 1}})));
  EXPECT_FALSE(rect.is_legal(DependenceSet({Vec{1, -1}})));
  // A skewed tiling can legalize a negative component: P = [[2,0],[ -2? ...
  // Use the classic skew: H rows (1,0) and (1,1) scaled.
  const Supernode skew = Supernode::from_sides(Mat{{2, 0}, {-2, 2}});
  // H = [[1/2, 0], [1/2, 1/2]]; d = (1, -1): Hd = (1/2, 0) >= 0 -> legal.
  EXPECT_TRUE(skew.is_legal(DependenceSet({Vec{1, -1}})));
}

TEST(SupernodeTest, ContainmentRequiresDepsShorterThanTile) {
  const Supernode sn = Supernode::from_sides(Mat::diagonal(Vec{4, 4}));
  EXPECT_TRUE(sn.contains_deps(DependenceSet({Vec{3, 3}})));
  EXPECT_FALSE(sn.contains_deps(DependenceSet({Vec{4, 0}})));
  EXPECT_FALSE(sn.contains_deps(DependenceSet({Vec{1, -1}})));
}

TEST(SupernodeTest, TileDepsForUnitStencil) {
  const Supernode sn = Supernode::from_sides(Mat::diagonal(Vec{4, 4, 4}));
  const auto dirs = sn.tile_deps(
      DependenceSet({Vec{1, 0, 0}, Vec{0, 1, 0}, Vec{0, 0, 1}}));
  // Unit deps along each axis -> exactly the three unit tile directions.
  ASSERT_EQ(dirs.size(), 3u);
  std::set<std::vector<i64>> got;
  for (const Vec& d : dirs) got.insert(d.data());
  EXPECT_TRUE(got.count({1, 0, 0}));
  EXPECT_TRUE(got.count({0, 1, 0}));
  EXPECT_TRUE(got.count({0, 0, 1}));
}

TEST(SupernodeTest, TileDepsIncludeDiagonalSubpatterns) {
  const Supernode sn = Supernode::from_sides(Mat::diagonal(Vec{4, 4}));
  const auto dirs =
      sn.tile_deps(DependenceSet({Vec{1, 1}, Vec{1, 0}, Vec{0, 1}}));
  // The (1,1) dependence can cross a corner: directions (1,1), (1,0), (0,1).
  ASSERT_EQ(dirs.size(), 3u);
  std::set<std::vector<i64>> got;
  for (const Vec& d : dirs) got.insert(d.data());
  EXPECT_TRUE(got.count({1, 1}));
  EXPECT_TRUE(got.count({1, 0}));
  EXPECT_TRUE(got.count({0, 1}));
}

// ------------------------------------------------------------- Rect ----

TEST(RectTilingTest, BasicMapping) {
  const RectTiling rt(Vec{10, 5});
  EXPECT_EQ(rt.tile_volume(), 50);
  EXPECT_EQ(rt.tile_of(Vec{23, 14}), (Vec{2, 2}));
  EXPECT_EQ(rt.local_of(Vec{23, 14}), (Vec{3, 4}));
  EXPECT_EQ(rt.tile_origin(Vec{2, 2}), (Vec{20, 10}));
  EXPECT_EQ(rt.tile_box(Vec{1, 0}), Box(Vec{10, 0}, Vec{19, 4}));
}

TEST(RectTilingTest, AgreesWithGeneralSupernode) {
  const RectTiling rt(Vec{3, 7});
  const Supernode sn = rt.as_supernode();
  for (i64 x = -5; x <= 15; ++x)
    for (i64 y = -5; y <= 15; ++y) {
      const Vec j{x, y};
      EXPECT_EQ(rt.tile_of(j), sn.tile_of(j));
      EXPECT_EQ(rt.local_of(j), sn.local_of(j));
    }
  EXPECT_EQ(rt.tile_volume(), sn.tile_volume());
}

TEST(RectTilingTest, RejectsBadSides) {
  EXPECT_THROW(RectTiling(Vec{0, 3}), util::Error);
  EXPECT_THROW(RectTiling(Vec{}), util::Error);
}

TEST(RectTilingTest, LegalityAndContainment) {
  const RectTiling rt(Vec{4, 4});
  EXPECT_TRUE(rt.is_legal(DependenceSet({Vec{1, 0}, Vec{1, 1}})));
  EXPECT_FALSE(rt.is_legal(DependenceSet({Vec{1, -1}})));
  EXPECT_TRUE(rt.contains_deps(DependenceSet({Vec{3, 3}})));
  EXPECT_FALSE(rt.contains_deps(DependenceSet({Vec{4, 0}})));
}

// --------------------------------------------------------- TiledSpace ----

TEST(TiledSpaceTest, ExactDivisionHasNoPartialTiles) {
  const loop::LoopNest nest = loop::stencil3d_nest(8, 8, 16);
  const TiledSpace ts(nest, RectTiling(Vec{4, 4, 4}));
  EXPECT_EQ(ts.tile_space().extents(), (Vec{2, 2, 4}));
  EXPECT_EQ(ts.num_tiles(), 16);
  ts.for_each_tile([&](const Vec& t) { EXPECT_FALSE(ts.is_partial(t)); });
}

TEST(TiledSpaceTest, PartialBoundaryTilesAreClipped) {
  const loop::LoopNest nest = loop::stencil3d_nest(10, 8, 16);
  const TiledSpace ts(nest, RectTiling(Vec{4, 4, 4}));
  EXPECT_EQ(ts.tile_space().extents(), (Vec{3, 2, 4}));
  EXPECT_TRUE(ts.is_partial(Vec{2, 0, 0}));
  EXPECT_EQ(ts.tile_iterations(Vec{2, 0, 0}).volume(), 2 * 4 * 4);
  EXPECT_FALSE(ts.is_partial(Vec{1, 1, 3}));
}

TEST(TiledSpaceTest, TileVolumesSumToDomainVolume) {
  const loop::LoopNest nest = loop::stencil3d_nest(10, 7, 13);
  const TiledSpace ts(nest, RectTiling(Vec{4, 3, 5}));
  i64 total = 0;
  ts.for_each_tile(
      [&](const Vec& t) { total += ts.tile_iterations(t).volume(); });
  EXPECT_EQ(total, nest.domain().volume());
}

TEST(TiledSpaceTest, RejectsIllegalOrTooSmallTiles) {
  const loop::LoopNest bad("neg", Box::from_extents(Vec{8, 8}),
                           DependenceSet({Vec{1, -1}}));
  EXPECT_THROW(TiledSpace(bad, RectTiling(Vec{4, 4})), util::Error);

  const loop::LoopNest wide("wide", Box::from_extents(Vec{8, 8}),
                            DependenceSet({Vec{2, 0}}));
  EXPECT_THROW(TiledSpace(wide, RectTiling(Vec{2, 4})), util::Error);
  EXPECT_NO_THROW(TiledSpace(wide, RectTiling(Vec{3, 4})));
}

TEST(TiledSpaceTest, LastTileMatchesExtents) {
  const loop::LoopNest nest = loop::stencil3d_nest(16, 16, 64);
  const TiledSpace ts(nest, RectTiling(Vec{4, 4, 16}));
  EXPECT_EQ(ts.last_tile(), (Vec{3, 3, 3}));
}

// --------------------------------------------------------------- Cost ----

TEST(CostTest, VCommTotalMatchesPaperExample1) {
  // Paper Example 1: 10x10 tiles, D = {(1,1),(1,0),(0,1)} -> V_comm = 20.
  const Supernode sn = Supernode::from_sides(Mat::diagonal(Vec{10, 10}));
  const DependenceSet deps({Vec{1, 1}, Vec{1, 0}, Vec{0, 1}});
  EXPECT_EQ(tile::v_comm_total(sn, deps), Rat(40));
  // ... eq. (1) counts both boundary surfaces; the paper's V_comm = 20 uses
  // eq. (2), with the mapping dimension's surface removed:
  EXPECT_EQ(tile::v_comm_mapped(sn, deps, 0), Rat(20));
  EXPECT_EQ(tile::v_comp(sn), 100);
}

TEST(CostTest, RectFormulasAgreeWithRationalFormulas) {
  const DependenceSet deps({Vec{1, 0, 2}, Vec{0, 1, 1}, Vec{1, 1, 0}});
  const RectTiling rt(Vec{4, 6, 5});
  const Supernode sn = rt.as_supernode();
  EXPECT_EQ(Rat(tile::v_comm_total_rect(rt, deps)),
            tile::v_comm_total(sn, deps));
  for (std::size_t x = 0; x < 3; ++x)
    EXPECT_EQ(Rat(tile::v_comm_mapped_rect(rt, deps, x)),
              tile::v_comm_mapped(sn, deps, x));
}

TEST(CostTest, FaceTrafficHandComputed) {
  // Tile 4x6, deps {(1,0),(1,1)}: face 0 ships (volume/4) * (1+1) = 12,
  // face 1 ships (volume/6) * (0+1) = 4.
  const RectTiling rt(Vec{4, 6});
  const DependenceSet deps({Vec{1, 0}, Vec{1, 1}});
  EXPECT_EQ(tile::rect_face_traffic(rt, deps, 0), 12);
  EXPECT_EQ(tile::rect_face_traffic(rt, deps, 1), 4);
  EXPECT_EQ(tile::v_comm_total_rect(rt, deps), 16);
  EXPECT_EQ(tile::v_comm_mapped_rect(rt, deps, 0), 4);
}

TEST(CostTest, SkewedTilingCommVolume) {
  // P = [[2,0],[0,2]] skewed by one: P = [[2, 2], [0, 2]], det = 4.
  const Supernode sn = Supernode::from_sides(Mat{{2, 2}, {0, 2}});
  const DependenceSet deps({Vec{1, 0}});
  // H = [[1/2, -1/2], [0, 1/2]], Hd = (1/2, 0); eq. (1):
  // (1/|det H|) * 1/2 = 4 * 1/2 = 2.
  EXPECT_EQ(tile::v_comm_total(sn, deps), Rat(2));
}

// -------------------------------------------------------------- Shape ----

TEST(ShapeTest, ContinuousOptimumProportionalToColumnSums) {
  // D columns sum to c = (1, 4); optimal sides s_i ∝ c_i.
  const DependenceSet deps({Vec{1, 4}});
  const auto s = tile::comm_minimal_sides_continuous(deps, 64.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_NEAR(s[1] / s[0], 4.0, 1e-9);
  EXPECT_NEAR(s[0] * s[1], 64.0, 1e-6);
}

TEST(ShapeTest, ZeroCommDimensionGetsUnitSide) {
  const DependenceSet deps({Vec{1, 0}});
  const auto s = tile::comm_minimal_sides_continuous(deps, 16.0);
  EXPECT_NEAR(s[0], 16.0, 1e-9);
  EXPECT_NEAR(s[1], 1.0, 1e-9);
}

TEST(ShapeTest, SymmetricDepsGiveSquareTiles) {
  const DependenceSet deps({Vec{1, 0}, Vec{0, 1}});
  const tile::ShapeResult r = tile::comm_minimal_shape(deps, 100);
  EXPECT_EQ(r.sides, (Vec{10, 10}));
  EXPECT_EQ(r.volume, 100);
  EXPECT_EQ(r.v_comm, 20);
}

TEST(ShapeTest, AsymmetricDepsPreferElongatedTiles) {
  // Heavy traffic along dim 1 -> larger side along dim 1.
  const DependenceSet deps({Vec{1, 0}, Vec{0, 1}, Vec{0, 1}, Vec{0, 1}});
  const tile::ShapeResult r = tile::comm_minimal_shape(deps, 144);
  EXPECT_GT(r.sides[1], r.sides[0]);
  // Beats the square of the same volume.
  const RectTiling square(Vec{12, 12});
  EXPECT_LE(r.v_comm, tile::v_comm_total_rect(square, deps));
}

TEST(ShapeTest, RespectsContainmentMinimum) {
  // A dependence with component 3 forces sides > 3 even at tiny volume.
  const DependenceSet deps({Vec{3, 1}});
  const tile::ShapeResult r = tile::comm_minimal_shape(deps, 4);
  EXPECT_GE(r.sides[0], 4);
}

TEST(ShapeTest, MappedDimensionIsPinned) {
  const DependenceSet deps({Vec{1, 0, 0}, Vec{0, 1, 0}, Vec{0, 0, 1}});
  const tile::ShapeResult r = tile::comm_minimal_shape(deps, 400, 2, 25);
  EXPECT_EQ(r.sides[2], 25);
  // The cross-section splits the remaining 16 evenly.
  EXPECT_EQ(r.sides[0], 4);
  EXPECT_EQ(r.sides[1], 4);
}
