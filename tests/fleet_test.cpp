// Tests for tilo::fleet — distributed sweep orchestration over a
// fault-tolerant worker fleet.
//
// The acceptance-critical properties pinned down here:
//   * determinism — a fleet sweep merges byte-identical to a single-node
//     core::sweep_tile_height run, at 1, 2 and 4 workers, on all three
//     paper problem spaces;
//   * exactly-once — a silent (evicted) or killed worker loses zero
//     units: its leases requeue and the run still completes with
//     completed == units, duplicates dropped by first-result-wins.
//
// Suites named Fleet* run under TSan (CMakePresets tsan filter); the
// fork+SIGKILL test lives in ForkFleetTest so the sanitizer job skips it
// (TSan and fork() do not mix).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "tilo/core/problem.hpp"
#include "tilo/core/sweep.hpp"
#include "tilo/fleet/controller.hpp"
#include "tilo/fleet/membership.hpp"
#include "tilo/fleet/merge.hpp"
#include "tilo/fleet/unit.hpp"
#include "tilo/fleet/worker.hpp"
#include "tilo/svc/client.hpp"
#include "tilo/util/error.hpp"

#ifndef TILO_CLI_PATH
#error "TILO_CLI_PATH must be defined by the build"
#endif

namespace {

using tilo::core::Problem;
using tilo::fleet::Controller;
using tilo::fleet::ControllerConfig;
using tilo::fleet::FleetStats;
using tilo::fleet::Member;
using tilo::fleet::Membership;
using tilo::fleet::Merge;
using tilo::fleet::WorkUnit;
using tilo::fleet::Worker;
using tilo::fleet::WorkerConfig;
using tilo::fleet::WorkerSummary;
using tilo::pipeline::Json;
using tilo::util::i64;
namespace fleet = tilo::fleet;
namespace svc = tilo::svc;
namespace core = tilo::core;

/// A fresh unix-socket address per controller so parallel ctest workers
/// never collide.
std::string fresh_address() {
  static int counter = 0;
  return "unix:" + ::testing::TempDir() + "fleet_test_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++) +
         ".sock";
}

/// The heights every determinism test sweeps: small enough to stay quick,
/// spread enough that schedules differ qualitatively across them.
const std::vector<i64> kHeights = {8, 16, 64, 256};

/// The single-node reference: sweep locally, file the canonical per-point
/// bytes into a Merge in plan order.  Everything a fleet run produces must
/// equal this byte-for-byte.
std::string single_node_document(const Problem& problem,
                                 const std::vector<i64>& heights) {
  const std::vector<core::SweepPoint> points =
      core::sweep_tile_height(problem, heights);
  Merge merge(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    merge.add(i, fleet::sweep_point_to_json(points[i]).dump());
  return merge.document();
}

struct FleetRun {
  std::string document;
  std::vector<std::string> payloads;  ///< per-unit result texts, plan order
  FleetStats stats;
  std::vector<WorkerSummary> workers;
};

/// Runs `units` to completion on an in-process controller with `nworkers`
/// in-process worker threads.
FleetRun run_fleet(std::vector<WorkUnit> units, int nworkers,
                   ControllerConfig cfg = {}) {
  cfg.address = fresh_address();
  const std::string address = cfg.address;
  Controller controller(std::move(cfg), std::move(units));
  controller.start();
  std::vector<WorkerSummary> summaries(nworkers);
  std::vector<std::thread> threads;
  threads.reserve(nworkers);
  for (int i = 0; i < nworkers; ++i) {
    threads.emplace_back([&summaries, &address, i] {
      WorkerConfig wc;
      wc.address = address;
      wc.name = "w" + std::to_string(i);
      summaries[i] = Worker(wc).run();
    });
  }
  controller.wait();
  for (std::thread& t : threads) t.join();
  FleetRun run;
  run.document = controller.merged_document();
  run.payloads = controller.merged().payloads();
  run.stats = controller.stats();
  run.workers = std::move(summaries);
  controller.stop();
  return run;
}

/// Raw fleet-op plumbing for the protocol-level tests: drive the
/// controller by hand with a svc::Client, no fleet::Worker in the way.
svc::Response fleet_call(svc::Client& client, svc::Op op, Json body) {
  svc::Request req;
  req.op = op;
  req.fleet = std::move(body);
  return client.call(std::move(req));
}

i64 register_worker(svc::Client& client, const std::string& name) {
  Json body = Json::object();
  body.set("name", Json::string(name));
  const svc::Response resp =
      fleet_call(client, svc::Op::kRegister, std::move(body));
  EXPECT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
  return Json::parse(resp.result).at("worker_id").as_integer("worker_id");
}

/// One unit-op round trip: deliver `completed` {index, result-text} pairs,
/// ask for `want` new leases.  Returns the parsed response object.
Json unit_poll(svc::Client& client, i64 worker_id, i64 want,
               const std::vector<std::pair<i64, std::string>>& completed = {}) {
  Json body = Json::object();
  body.set("worker_id", Json::integer(worker_id));
  body.set("want", Json::integer(want));
  if (!completed.empty()) {
    Json arr = Json::array();
    for (const auto& [index, result] : completed) {
      Json entry = Json::object();
      entry.set("unit", Json::integer(index));
      entry.set("result", Json::parse(result));
      arr.push(std::move(entry));
    }
    body.set("completed", std::move(arr));
  }
  const svc::Response resp =
      fleet_call(client, svc::Op::kUnit, std::move(body));
  EXPECT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
  return Json::parse(resp.result);
}

/// Tiny inert units for protocol tests — any JSON object works as a
/// "result" because the controller treats result bytes as opaque.
std::vector<WorkUnit> toy_units(std::size_t n) {
  std::vector<WorkUnit> units;
  units.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    units.push_back(WorkUnit{i, "{\"toy\":" + std::to_string(i) + "}"});
  return units;
}

std::string toy_result(std::size_t i) {
  return "{\"answer\":" + std::to_string(i) + "}";
}

}  // namespace

// ---------------------------------------------------------------------------
// Merge: order-insensitive collection, deterministic emission.

TEST(FleetMergeTest, OutOfOrderResultsEmitInIndexOrder) {
  Merge merge(3);
  EXPECT_FALSE(merge.complete());
  EXPECT_TRUE(merge.add(2, "{\"i\":2}"));
  EXPECT_TRUE(merge.add(0, "{\"i\":0}"));
  EXPECT_FALSE(merge.complete());
  EXPECT_TRUE(merge.add(1, "{\"i\":1}"));
  EXPECT_TRUE(merge.complete());
  EXPECT_EQ(merge.document(),
            "{\"tilo\":\"fleet.result\",\"version\":1,"
            "\"units\":[{\"i\":0},{\"i\":1},{\"i\":2}]}");
}

TEST(FleetMergeTest, FirstResultWinsAndDuplicateIsDropped) {
  Merge merge(2);
  EXPECT_TRUE(merge.add(0, "{\"first\":true}"));
  EXPECT_FALSE(merge.add(0, "{\"second\":true}"));  // dropped
  EXPECT_EQ(merge.payloads()[0], "{\"first\":true}");
  EXPECT_EQ(merge.completed(), 1u);
}

TEST(FleetMergeTest, IncompleteDocumentAndOutOfRangeAddThrow) {
  Merge merge(2);
  merge.add(0, "{}");
  EXPECT_THROW(merge.document(), tilo::util::Error);
  EXPECT_THROW(merge.add(7, "{}"), tilo::util::Error);
}

// ---------------------------------------------------------------------------
// Membership: synthetic-clock liveness — no sleeping in these tests.

TEST(FleetMembershipTest, EvictsOnlyMembersPastTheSilenceThreshold) {
  Membership members;
  const int a = members.add("a", /*now_ns=*/0);
  const int b = members.add("b", 0);
  EXPECT_NE(a, b);
  members.find(a)->leased = {3, 5};

  // b heartbeats at t=900ms, a stays silent; threshold 1s from t=1.5s.
  EXPECT_TRUE(members.touch(b, 900'000'000));
  std::vector<Member> evicted =
      members.evict_stale(/*now_ns=*/1'500'000'000,
                          /*max_silence_ns=*/1'000'000'000);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id, a);
  EXPECT_EQ(evicted[0].leased, (std::vector<std::size_t>{3, 5}));
  EXPECT_EQ(members.size(), 1u);

  // The evicted id is dead forever: touch fails, ids are never reused.
  EXPECT_FALSE(members.touch(a, 1'600'000'000));
  const int c = members.add("c", 1'600'000'000);
  EXPECT_NE(c, a);
  EXPECT_NE(c, b);
}

TEST(FleetMembershipTest, RemoveHandsBackTheDepartingRecord) {
  Membership members;
  const int id = members.add("leaver", 0);
  members.find(id)->leased = {1};
  Member gone;
  EXPECT_TRUE(members.remove(id, &gone));
  EXPECT_EQ(gone.leased, (std::vector<std::size_t>{1}));
  EXPECT_FALSE(members.remove(id));
  EXPECT_EQ(members.size(), 0u);
}

// ---------------------------------------------------------------------------
// Unit payloads: planning and execution round-trip the canonical bytes.

TEST(FleetUnitTest, SweepUnitExecutesToTheSingleNodePointBytes) {
  const Problem problem = core::paper_problem_i();
  const std::vector<WorkUnit> units = fleet::sweep_units(problem, {16, 64});
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0].index, 0u);
  EXPECT_EQ(units[1].index, 1u);

  const std::vector<core::SweepPoint> reference =
      core::sweep_tile_height(problem, {64});
  EXPECT_EQ(fleet::execute_unit(units[1].payload),
            fleet::sweep_point_to_json(reference.front()).dump());
}

TEST(FleetUnitTest, SweepPointJsonRoundTripIsExact) {
  const Problem problem = core::paper_problem_ii();
  const core::SweepPoint p =
      core::sweep_tile_height(problem, {32}).front();
  const std::string text = fleet::sweep_point_to_json(p).dump();
  const core::SweepPoint q =
      fleet::sweep_point_from_json(Json::parse(text));
  // Doubles survive exactly: the writer prints round-trippable %.17g.
  EXPECT_EQ(q.V, p.V);
  EXPECT_EQ(q.g, p.g);
  EXPECT_EQ(q.t_overlap, p.t_overlap);
  EXPECT_EQ(q.t_nonoverlap, p.t_nonoverlap);
  EXPECT_EQ(q.predicted_overlap, p.predicted_overlap);
  EXPECT_EQ(q.predicted_nonoverlap, p.predicted_nonoverlap);
  EXPECT_EQ(q.predicted_cpu_bound, p.predicted_cpu_bound);
  EXPECT_EQ(q.events, p.events);
  EXPECT_EQ(fleet::sweep_point_to_json(q).dump(), text);
}

TEST(FleetUnitTest, MalformedPayloadsAreRejected) {
  EXPECT_THROW(fleet::execute_unit("not json"), tilo::util::Error);
  EXPECT_THROW(fleet::execute_unit("{\"tilo\":\"fleet.unit\",\"version\":99,"
                                   "\"kind\":\"sweep_point\"}"),
               tilo::util::Error);
  EXPECT_THROW(fleet::execute_unit("{\"tilo\":\"fleet.unit\",\"version\":1,"
                                   "\"kind\":\"mystery\"}"),
               tilo::util::Error);
}

// ---------------------------------------------------------------------------
// Controller protocol: register / lease / dedup / deregister, driven by a
// raw client so every transition is observable.

TEST(FleetControllerTest, RegisterGrantsIdCreditAndHeartbeatInterval) {
  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.credit = 3;
  cfg.heartbeat_ms = 250;
  Controller controller(cfg, toy_units(4));
  controller.start();

  svc::Client client = svc::Client::connect(cfg.address);
  Json body = Json::object();
  body.set("name", Json::string("probe"));
  const svc::Response resp =
      fleet_call(client, svc::Op::kRegister, std::move(body));
  ASSERT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
  const Json r = Json::parse(resp.result);
  EXPECT_GT(r.at("worker_id").as_integer("worker_id"), 0);
  EXPECT_EQ(r.at("credit").as_integer("credit"), 3);
  EXPECT_EQ(r.at("heartbeat_ms").as_integer("heartbeat_ms"), 250);
  EXPECT_EQ(r.at("fleet_version").as_integer("fleet_version"),
            fleet::kFleetVersion);

  const FleetStats stats = controller.stats();
  EXPECT_EQ(stats.workers, 1u);
  EXPECT_EQ(stats.registered, 1u);
  EXPECT_EQ(stats.units, 4u);
  EXPECT_EQ(stats.pending, 4u);
  controller.stop();
}

TEST(FleetControllerTest, LeaseIsCappedByTheCreditWindow) {
  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.credit = 2;
  Controller controller(cfg, toy_units(5));
  controller.start();

  svc::Client client = svc::Client::connect(cfg.address);
  const i64 id = register_worker(client, "greedy");
  const Json r = unit_poll(client, id, /*want=*/10);
  EXPECT_TRUE(r.at("known").as_bool("known"));
  EXPECT_FALSE(r.at("done").as_bool("done"));
  EXPECT_EQ(r.at("units").as_array("units").size(), 2u);

  const FleetStats stats = controller.stats();
  EXPECT_EQ(stats.in_flight, 2u);
  EXPECT_EQ(stats.pending, 3u);
  controller.stop();
}

TEST(FleetControllerTest, DuplicateResultIsDroppedFirstWins) {
  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.credit = 1;
  cfg.speculate = false;
  Controller controller(cfg, toy_units(2));
  controller.start();

  svc::Client a = svc::Client::connect(cfg.address);
  svc::Client b = svc::Client::connect(cfg.address);
  const i64 ida = register_worker(a, "a");
  const i64 idb = register_worker(b, "b");

  // a leases unit 0, b leases unit 1.
  const Json ra = unit_poll(a, ida, 1);
  const Json rb = unit_poll(b, idb, 1);
  const i64 ua = ra.at("units").as_array("units")[0].at("unit").as_integer("u");
  const i64 ub = rb.at("units").as_array("units")[0].at("unit").as_integer("u");
  EXPECT_NE(ua, ub);

  // a's real result lands first; b then claims a's unit with different
  // bytes — the zombie loses, first result wins.
  unit_poll(a, ida, 0, {{ua, toy_result(0)}});
  unit_poll(b, idb, 0, {{ua, "{\"impostor\":true}"}});
  unit_poll(b, idb, 0, {{ub, toy_result(1)}});

  const FleetStats stats = controller.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_TRUE(controller.merged().complete());
  EXPECT_EQ(controller.merged().payloads()[static_cast<std::size_t>(ua)],
            toy_result(0));
  controller.stop();
}

TEST(FleetControllerTest, DeregisterRequeuesLeasesForOtherWorkers) {
  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.credit = 2;
  Controller controller(cfg, toy_units(2));
  controller.start();

  svc::Client quitter = svc::Client::connect(cfg.address);
  const i64 id = register_worker(quitter, "quitter");
  const Json r = unit_poll(quitter, id, 2);
  ASSERT_EQ(r.at("units").as_array("units").size(), 2u);

  Json body = Json::object();
  body.set("worker_id", Json::integer(id));
  const svc::Response resp =
      fleet_call(quitter, svc::Op::kDeregister, std::move(body));
  ASSERT_EQ(resp.status, svc::RespStatus::kOk);
  EXPECT_EQ(Json::parse(resp.result).at("known").as_bool("known"), true);

  FleetStats stats = controller.stats();
  EXPECT_EQ(stats.requeued, 2u);
  EXPECT_EQ(stats.pending, 2u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.deregistered, 1u);

  // A second worker picks the requeued units straight up.
  svc::Client heir = svc::Client::connect(cfg.address);
  const i64 id2 = register_worker(heir, "heir");
  const Json r2 = unit_poll(heir, id2, 2);
  EXPECT_EQ(r2.at("units").as_array("units").size(), 2u);
  controller.stop();
}

TEST(FleetControllerTest, SilentWorkerIsEvictedAndItsLeasesRequeue) {
  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.credit = 2;
  cfg.heartbeat_ms = 50;  // evict after ~150ms of silence
  cfg.miss_threshold = 3;
  cfg.speculate = false;  // isolate the eviction-requeue path
  // Real sweep units: the live rescue worker actually executes these.
  Controller controller(
      cfg, fleet::sweep_units(core::paper_problem_i(), {16, 64}));
  controller.start();

  // The silent worker leases both units and then never speaks again.
  svc::Client silent = svc::Client::connect(cfg.address);
  const i64 id = register_worker(silent, "silent");
  ASSERT_EQ(unit_poll(silent, id, 2).at("units").as_array("units").size(), 2u);

  // A live worker thread drains the fleet once eviction requeues them.
  WorkerConfig wc;
  wc.address = cfg.address;
  wc.name = "live";
  Worker live(wc);
  std::thread runner([&live] { live.run(); });
  ASSERT_TRUE(controller.wait_for_ms(30'000));
  runner.join();

  const FleetStats stats = controller.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.evicted, 1u);
  EXPECT_EQ(stats.requeued, 2u);
  EXPECT_EQ(stats.duplicates, 0u);

  // The evicted id is told to re-register on its next poll.
  const Json r = unit_poll(silent, id, 1);
  EXPECT_FALSE(r.at("known").as_bool("known"));
  EXPECT_TRUE(r.at("done").as_bool("done"));
  controller.stop();
}

TEST(FleetControllerTest, SpeculationReDispatchesStragglersFirstResultWins) {
  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.credit = 1;
  cfg.heartbeat_ms = 10'000;  // no eviction in this test
  cfg.speculate = true;
  cfg.speculate_after_ms = 1;
  Controller controller(cfg, toy_units(1));
  controller.start();

  svc::Client slow = svc::Client::connect(cfg.address);
  svc::Client fast = svc::Client::connect(cfg.address);
  const i64 slow_id = register_worker(slow, "slow");
  const i64 fast_id = register_worker(fast, "fast");

  // slow leases the only unit and stalls past the straggler threshold.
  ASSERT_EQ(unit_poll(slow, slow_id, 1).at("units").as_array("units").size(),
            1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  // fast finds the queue dry and receives a speculative second lease.
  const Json r = unit_poll(fast, fast_id, 1);
  ASSERT_EQ(r.at("units").as_array("units").size(), 1u);
  EXPECT_EQ(r.at("units").as_array("units")[0].at("unit").as_integer("u"), 0);
  EXPECT_EQ(controller.stats().speculated, 1u);

  // fast lands first; slow's late copy is a counted duplicate.
  unit_poll(fast, fast_id, 0, {{0, toy_result(0)}});
  unit_poll(slow, slow_id, 0, {{0, "{\"late\":true}"}});

  const FleetStats stats = controller.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(controller.merged().payloads()[0], toy_result(0));
  controller.stop();
}

TEST(FleetControllerTest, CompileOpIsRefusedByTheController) {
  ControllerConfig cfg;
  cfg.address = fresh_address();
  Controller controller(cfg, toy_units(1));
  controller.start();
  svc::Client client = svc::Client::connect(cfg.address);
  svc::Request req;
  req.op = svc::Op::kCompile;
  req.compile.source = "FOR i = 0 TO 3\n A(i) = A(i-1)\nENDFOR\n";
  const svc::Response resp = client.call(std::move(req));
  EXPECT_EQ(resp.status, svc::RespStatus::kBadRequest);
  EXPECT_NE(resp.error.find("fleet controller"), std::string::npos);
  controller.stop();
}

// ---------------------------------------------------------------------------
// Determinism: the merged fleet document is byte-identical to the
// single-node sweep at 1, 2 and 4 workers, on all three paper spaces.

namespace {

void expect_fleet_matches_single_node(const Problem& problem) {
  const std::string reference = single_node_document(problem, kHeights);
  for (int nworkers : {1, 2, 4}) {
    ControllerConfig cfg;
    cfg.credit = 2;  // force multiple round trips even at 1 worker
    FleetRun run = run_fleet(fleet::sweep_units(problem, kHeights), nworkers,
                             std::move(cfg));
    EXPECT_EQ(run.document, reference)
        << "fleet sweep diverged at " << nworkers << " worker(s)";
    EXPECT_EQ(run.stats.completed, kHeights.size());
    EXPECT_EQ(run.stats.requeued, 0u);
    std::uint64_t worker_total = 0;
    for (const WorkerSummary& w : run.workers) {
      EXPECT_TRUE(w.clean);
      worker_total += w.completed;
    }
    // Every computed unit was a winning result (no speculation fired in a
    // healthy run, so worker tallies sum exactly to the unit count).
    EXPECT_EQ(worker_total, kHeights.size() + run.stats.duplicates);
  }
}

}  // namespace

TEST(FleetDeterminismTest, PaperSpaceIMatchesSingleNodeAt124Workers) {
  expect_fleet_matches_single_node(core::paper_problem_i());
}

TEST(FleetDeterminismTest, PaperSpaceIIMatchesSingleNodeAt124Workers) {
  expect_fleet_matches_single_node(core::paper_problem_ii());
}

TEST(FleetDeterminismTest, PaperSpaceIIIMatchesSingleNodeAt124Workers) {
  expect_fleet_matches_single_node(core::paper_problem_iii());
}

TEST(FleetDeterminismTest, MergedPayloadsParseBackToTheSweepPoints) {
  const Problem problem = core::paper_problem_i();
  const FleetRun run = run_fleet(fleet::sweep_units(problem, kHeights), 2);
  const std::vector<core::SweepPoint> fleet_points =
      fleet::sweep_points_from_payloads(run.payloads);
  const std::vector<core::SweepPoint> reference =
      core::sweep_tile_height(problem, kHeights);
  ASSERT_EQ(fleet_points.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(fleet_points[i].V, reference[i].V);
    EXPECT_EQ(fleet_points[i].g, reference[i].g);
    EXPECT_EQ(fleet_points[i].t_overlap, reference[i].t_overlap);
    EXPECT_EQ(fleet_points[i].t_nonoverlap, reference[i].t_nonoverlap);
    EXPECT_EQ(fleet_points[i].events, reference[i].events);
  }
}

// ---------------------------------------------------------------------------
// Robustness: SIGKILL of an external worker process mid-sweep loses zero
// units.  Runs out-of-process (fork + exec of tilo_cli --fleet-worker), so
// it is excluded from the TSan suite by name.

TEST(ForkFleetTest, SigkilledWorkerLosesNoUnits) {
  const Problem problem = core::paper_problem_i();
  // Many moderate-cost units: the victim cannot finish the sweep before
  // the kill lands, and each unit completes in well under a second.
  const std::vector<i64> heights =
      core::height_grid(8, problem.max_tile_height() / 2, 1.2);
  ASSERT_GE(heights.size(), 8u);

  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.credit = 2;
  cfg.heartbeat_ms = 100;  // evict the corpse after ~300ms
  cfg.miss_threshold = 3;
  Controller controller(cfg, fleet::sweep_units(problem, heights));
  controller.start();

  // The victim: a real external worker process.
  const pid_t victim = fork();
  ASSERT_GE(victim, 0);
  if (victim == 0) {
    std::freopen("/dev/null", "w", stdout);
    std::freopen("/dev/null", "w", stderr);
    execl(TILO_CLI_PATH, TILO_CLI_PATH, "--fleet-worker", cfg.address.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }

  // Wait until the victim has delivered at least one result and holds a
  // fresh batch of leases, then SIGKILL it — no deregister, no goodbye.
  bool armed = false;
  for (int attempt = 0; attempt < 3000; ++attempt) {
    const FleetStats s = controller.stats();
    if (s.completed >= 1 && s.in_flight >= 1) {
      armed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(armed) << "victim never reached a kill window";
  ASSERT_EQ(kill(victim, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(victim, &wstatus, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  // A rescue worker finishes the sweep; eviction requeues the victim's
  // stranded leases.
  WorkerConfig wc;
  wc.address = cfg.address;
  wc.name = "rescue";
  Worker rescue(wc);
  std::thread runner([&rescue] { rescue.run(); });
  ASSERT_TRUE(controller.wait_for_ms(120'000));
  runner.join();

  const FleetStats stats = controller.stats();
  EXPECT_EQ(stats.completed, stats.units);
  EXPECT_GE(stats.requeued + stats.speculated, 1u)
      << "the victim's leases were never recovered";
  EXPECT_GE(stats.evicted, 1u);

  // And the result is still byte-identical to the single-node run.
  EXPECT_EQ(controller.merged_document(),
            single_node_document(problem, heights));
  controller.stop();
}

// ---------------------------------------------------------------------------
// Batched dispatch: several heights ride one work unit (analytic
// cost-balanced chunks), the controller's exactly-once machinery operates
// at unit granularity, and the flattened canonical document is invariant
// to how the plan was chunked.  Also covers the in-process fast lane:
// co-located workers that call the controller directly, no sockets.

namespace {

/// The chunking-invariant reference: one payload per height, flattened
/// through the same canonical document the fleet runs are compared on.
std::string single_node_points_document(const Problem& problem,
                                        const std::vector<i64>& heights) {
  const std::vector<core::SweepPoint> points =
      core::sweep_tile_height(problem, heights);
  std::vector<std::string> payloads;
  payloads.reserve(points.size());
  for (const core::SweepPoint& p : points)
    payloads.push_back(fleet::sweep_point_to_json(p).dump());
  return fleet::sweep_points_document(payloads);
}

}  // namespace

TEST(FleetBatchTest, BatchPlanCoversEveryHeightOnceInOrder) {
  const Problem problem = core::paper_problem_i();
  const std::vector<i64> heights =
      core::height_grid(8, problem.max_tile_height() / 2, 1.3);
  fleet::SweepBatchOptions opts;
  opts.max_heights = 3;
  const std::vector<WorkUnit> units =
      fleet::sweep_batch_units(problem, heights, opts);
  ASSERT_GE(units.size(), 2u);
  std::vector<i64> seen;
  for (std::size_t i = 0; i < units.size(); ++i) {
    EXPECT_EQ(units[i].index, i);
    const Json j = Json::parse(units[i].payload);
    EXPECT_EQ(j.at("kind").as_string("kind"), "sweep_batch");
    const Json::Array& hs = j.at("heights").as_array("heights");
    EXPECT_GE(hs.size(), 1u);
    EXPECT_LE(hs.size(), 3u);
    for (const Json& h : hs) seen.push_back(h.as_integer("heights"));
  }
  EXPECT_EQ(seen, heights);
}

TEST(FleetBatchTest, AnalyticChunksIsolateTheMostExpensiveHeight) {
  const Problem problem = core::paper_problem_i();
  // Strongly skewed costs: the smallest height dominates (cost ~ 1 + K/V),
  // so with balance 1.0 it must not share a chunk with anything else.
  const std::vector<i64> heights = {8, 512, 1024, 2048};
  const std::vector<WorkUnit> units =
      fleet::sweep_batch_units(problem, heights);
  const Json first = Json::parse(units.front().payload);
  EXPECT_EQ(first.at("heights").as_array("heights").size(), 1u)
      << "the dominant height should ride alone";
}

TEST(FleetBatchTest, BatchedMergeByteIdenticalToUnbatchedAndSingleNode) {
  const Problem problem = core::paper_problem_i();
  const std::string reference =
      single_node_points_document(problem, kHeights);

  fleet::SweepBatchOptions opts;
  opts.max_heights = 2;
  opts.balance = 100.0;  // length-capped chunks: deterministic 2+2 split
  const std::vector<WorkUnit> batched =
      fleet::sweep_batch_units(problem, kHeights, opts);
  ASSERT_EQ(batched.size(), 2u);

  for (int nworkers : {1, 2}) {
    FleetRun unbatched_run =
        run_fleet(fleet::sweep_units(problem, kHeights), nworkers);
    FleetRun batched_run = run_fleet(batched, nworkers);
    EXPECT_EQ(fleet::sweep_points_document(unbatched_run.payloads),
              reference);
    EXPECT_EQ(fleet::sweep_points_document(batched_run.payloads), reference)
        << "batched merge diverged at " << nworkers << " worker(s)";
    EXPECT_EQ(batched_run.stats.completed, batched.size());
  }
}

TEST(FleetBatchTest, EvictedBatchedGrantRequeuesExactlyOncePerUnit) {
  const Problem problem = core::paper_problem_i();
  const std::vector<i64> heights = {8, 16, 32, 64};
  fleet::SweepBatchOptions opts;
  opts.max_heights = 2;
  opts.balance = 100.0;  // two units of two heights each
  const std::vector<WorkUnit> units =
      fleet::sweep_batch_units(problem, heights, opts);
  ASSERT_EQ(units.size(), 2u);

  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.credit = 2;
  cfg.heartbeat_ms = 50;  // evict after ~150ms of silence
  cfg.miss_threshold = 3;
  cfg.speculate = false;  // isolate the eviction-requeue path
  Controller controller(cfg, units);
  controller.start();

  // The silent worker leases BOTH batched units, then never speaks again.
  svc::Client silent = svc::Client::connect(cfg.address);
  const i64 id = register_worker(silent, "silent");
  ASSERT_EQ(unit_poll(silent, id, 2).at("units").as_array("units").size(),
            2u);

  WorkerConfig wc;
  wc.address = cfg.address;
  wc.name = "live";
  Worker live(wc);
  std::thread runner([&live] { live.run(); });
  ASSERT_TRUE(controller.wait_for_ms(30'000));
  runner.join();

  const FleetStats stats = controller.stats();
  // Exactly once per unit: each batched grant requeued a single time (a
  // unit, not a height, is the requeue granule), then completed once.
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.evicted, 1u);
  EXPECT_EQ(stats.requeued, 2u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(fleet::sweep_points_document(controller.merged().payloads()),
            single_node_points_document(problem, heights));
  controller.stop();
}

TEST(FleetBatchTest, LocalTransportMatchesSocketBytesAndBookkeeping) {
  const Problem problem = core::paper_problem_i();
  const std::string reference =
      single_node_points_document(problem, kHeights);
  const std::vector<WorkUnit> units =
      fleet::sweep_batch_units(problem, kHeights);

  // Socket path first (run_fleet), then the in-process fast lane.
  FleetRun socket_run = run_fleet(units, 2);
  EXPECT_EQ(fleet::sweep_points_document(socket_run.payloads), reference);

  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.credit = 2;
  Controller controller(cfg, units);
  controller.start();
  std::vector<WorkerSummary> summaries(2);
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&controller, &summaries, i] {
      WorkerConfig wc;
      wc.local = &controller;  // no sockets, no frames
      wc.name = "local-" + std::to_string(i);
      summaries[i] = Worker(wc).run();
    });
  }
  controller.wait();
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(fleet::sweep_points_document(controller.merged().payloads()),
            reference);
  const FleetStats stats = controller.stats();
  EXPECT_EQ(stats.completed, units.size());
  EXPECT_EQ(stats.registered, 2u);
  EXPECT_GT(stats.unit_polls, 0u);
  std::uint64_t total = 0;
  for (const WorkerSummary& s : summaries) {
    EXPECT_TRUE(s.clean);
    total += s.completed;
  }
  EXPECT_EQ(total, units.size() + stats.duplicates);
  controller.stop();
}

// ---------------------------------------------------------------------------
// Scheduler integration: job arrays, preemption over the wire, and the
// squeue/sacct introspection ops.

namespace {

/// A toy job array with `n` units starting at index `base`.
fleet::JobArray toy_job(const std::string& name, const std::string& tenant,
                        i64 priority, std::size_t base, std::size_t n) {
  fleet::JobArray job;
  job.spec.name = name;
  job.spec.tenant = tenant;
  job.spec.priority = priority;
  for (std::size_t i = 0; i < n; ++i)
    job.units.push_back(
        WorkUnit{base + i, "{\"toy\":" + std::to_string(base + i) + "}"});
  return job;
}

}  // namespace

TEST(FleetSchedTest, PreemptionRequeuesExactlyOnceAndDropNoticeFollows) {
  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.credit = 2;
  cfg.speculate = false;
  cfg.sched.policy = "fair";
  // A single-slot partition: the low job's lease fills it, so a
  // high-priority arrival has to preempt to make progress.
  cfg.sched.partitions.push_back(
      tilo::sched::PartitionLimits{"default", 1, 0});
  std::vector<fleet::JobArray> jobs;
  jobs.push_back(toy_job("low", "small", 0, 0, 2));
  Controller controller(cfg, std::move(jobs));
  controller.start();

  svc::Client client = svc::Client::connect(cfg.address);
  const i64 id = register_worker(client, "w");
  const Json first = unit_poll(client, id, 1);
  ASSERT_EQ(first.at("units").as_array("units").size(), 1u);
  EXPECT_EQ(first.at("units").as_array("units")[0]
                .at("unit").as_integer("unit"), 0);
  EXPECT_EQ(first.find("drop"), nullptr);

  // High-priority arrival: the policy names the low job's lease (unit 0)
  // as the victim; the controller requeues it exactly-once and queues a
  // drop notice for our next poll.
  controller.submit(toy_job("high", "big", 9, 2, 1));
  const Json second = unit_poll(client, id, 1);
  ASSERT_EQ(second.at("units").as_array("units").size(), 1u);
  EXPECT_EQ(second.at("units").as_array("units")[0]
                .at("unit").as_integer("unit"), 2);
  const Json* drop = second.find("drop");
  ASSERT_NE(drop, nullptr);
  ASSERT_EQ(drop->as_array("drop").size(), 1u);
  EXPECT_EQ(drop->as_array("drop")[0].as_integer("drop"), 0);

  // The notice is delivered once: it does not ride the next poll too.
  const Json third = unit_poll(client, id, 1, {{2, toy_result(2)}});
  EXPECT_EQ(third.find("drop"), nullptr);
  ASSERT_EQ(third.at("units").as_array("units").size(), 1u);
  EXPECT_EQ(third.at("units").as_array("units")[0]
                .at("unit").as_integer("unit"), 0);

  const Json fourth = unit_poll(client, id, 1, {{0, toy_result(0)}});
  ASSERT_EQ(fourth.at("units").as_array("units").size(), 1u);
  const Json last = unit_poll(client, id, 0, {{1, toy_result(1)}});
  EXPECT_TRUE(last.at("done").as_bool("done"));

  const FleetStats stats = controller.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.preempted, 1u);
  EXPECT_EQ(stats.requeued, 1u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.jobs, 2u);
  const std::vector<std::string> payloads = controller.merged().payloads();
  ASSERT_EQ(payloads.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(payloads[i], toy_result(i));
  controller.stop();
}

TEST(FleetSchedTest, QueueOpReportsJobsAndPartitions) {
  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.sched.policy = "fair";
  std::vector<fleet::JobArray> jobs;
  jobs.push_back(toy_job("sweep", "acme", 5, 0, 3));
  Controller controller(cfg, std::move(jobs));
  controller.start();

  svc::Client client = svc::Client::connect(cfg.address);
  const svc::Response resp = client.queue();
  ASSERT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
  const Json r = Json::parse(resp.result);
  EXPECT_EQ(r.at("policy").as_string("policy"), "fair");
  const Json::Array& js = r.at("jobs").as_array("jobs");
  ASSERT_EQ(js.size(), 1u);
  EXPECT_EQ(js[0].at("name").as_string("name"), "sweep");
  EXPECT_EQ(js[0].at("tenant").as_string("tenant"), "acme");
  EXPECT_EQ(js[0].at("partition").as_string("partition"), "default");
  EXPECT_EQ(js[0].at("state").as_string("state"), "pending");
  EXPECT_EQ(js[0].at("priority").as_integer("priority"), 5);
  EXPECT_GE(js[0].at("effective_priority").as_integer("eff"), 5);
  EXPECT_EQ(js[0].at("units").as_integer("units"), 3);
  EXPECT_EQ(js[0].at("queued").as_integer("queued"), 3);
  EXPECT_EQ(js[0].at("in_flight").as_integer("in_flight"), 0);
  const Json::Array& ps = r.at("partitions").as_array("partitions");
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0].at("name").as_string("name"), "default");
  EXPECT_EQ(ps[0].at("queued").as_integer("queued"), 3);
  controller.stop();
}

TEST(FleetSchedTest, AccountingOpChargesTheTenantPerCompletedUnit) {
  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.sched.policy = "fair";
  std::vector<fleet::JobArray> jobs;
  jobs.push_back(toy_job("sweep", "acme", 0, 0, 2));
  Controller controller(cfg, std::move(jobs));
  controller.start();

  svc::Client client = svc::Client::connect(cfg.address);
  const i64 id = register_worker(client, "w");
  const Json leased = unit_poll(client, id, 2);
  ASSERT_EQ(leased.at("units").as_array("units").size(), 2u);
  unit_poll(client, id, 0, {{0, toy_result(0)}, {1, toy_result(1)}});

  const svc::Response resp = client.accounting();
  ASSERT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
  const Json r = Json::parse(resp.result);
  EXPECT_EQ(r.at("policy").as_string("policy"), "fair");
  const Json::Array& ts = r.at("tenants").as_array("tenants");
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].at("name").as_string("name"), "acme");
  EXPECT_EQ(ts[0].at("charged_units").as_integer("charged_units"), 2);
  EXPECT_GT(ts[0].at("usage").as_number("usage"), 0.0);
  EXPECT_EQ(r.at("preempted").as_integer("preempted"), 0);
  EXPECT_EQ(r.at("backfilled").as_integer("backfilled"), 0);
  controller.stop();
}

TEST(FleetSchedTest, MidRunSubmitExtendsTheMergeAndCompletes) {
  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.credit = 4;
  cfg.speculate = false;
  std::vector<fleet::JobArray> jobs;
  jobs.push_back(toy_job("first", "t", 0, 0, 2));
  Controller controller(cfg, std::move(jobs));
  controller.start();

  svc::Client client = svc::Client::connect(cfg.address);
  const i64 id = register_worker(client, "w");
  const Json leased = unit_poll(client, id, 2);
  ASSERT_EQ(leased.at("units").as_array("units").size(), 2u);

  // A second array lands while the first is in flight: the merge grows,
  // "done" stays false until every unit of both arrays is in.
  controller.submit(toy_job("second", "t", 0, 2, 2));
  const Json mid =
      unit_poll(client, id, 2, {{0, toy_result(0)}, {1, toy_result(1)}});
  EXPECT_FALSE(mid.at("done").as_bool("done"));
  ASSERT_EQ(mid.at("units").as_array("units").size(), 2u);
  const Json last =
      unit_poll(client, id, 0, {{2, toy_result(2)}, {3, toy_result(3)}});
  EXPECT_TRUE(last.at("done").as_bool("done"));

  const FleetStats stats = controller.stats();
  EXPECT_EQ(stats.units, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.jobs, 2u);
  const std::vector<std::string> payloads = controller.merged().payloads();
  ASSERT_EQ(payloads.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(payloads[i], toy_result(i));
  controller.stop();
}

TEST(FleetSchedTest, JobArrayCtorMatchesLegacyCtorBytes) {
  const Problem problem = core::paper_problem_i();
  const std::string reference = single_node_document(problem, kHeights);

  // Legacy vector<WorkUnit> ctor (wraps into one default job array).
  FleetRun legacy = run_fleet(fleet::sweep_units(problem, kHeights), 2);
  EXPECT_EQ(legacy.document, reference);

  // Explicit single job array under fifo: byte-identical document.
  fleet::JobArray job;
  job.spec.name = "sweep";
  job.units = fleet::sweep_units(problem, kHeights);
  ControllerConfig cfg;
  cfg.address = fresh_address();
  std::vector<fleet::JobArray> jobs;
  jobs.push_back(std::move(job));
  Controller controller(std::move(cfg), std::move(jobs));
  controller.start();
  WorkerConfig wc;
  wc.local = &controller;
  wc.name = "local";
  std::thread runner([&wc] { Worker(wc).run(); });
  ASSERT_TRUE(controller.wait_for_ms(30'000));
  runner.join();
  EXPECT_EQ(controller.merged_document(), reference);
  EXPECT_EQ(controller.stats().jobs, 1u);
  controller.stop();
}

// ---------------------------------------------------------------------------
// call_local fast lane vs the eviction clock and deregister: these run
// under TSan (the suite matches the sanitizer filter), pinning down that
// the no-socket path takes the same locks as everything racing it.

namespace {

/// A hand-rolled local worker: polls via call_local, answers toy results,
/// re-registers when evicted, and naps every few rounds so the 1ms
/// eviction clock actually catches it mid-lease.
void local_racer(Controller& controller, const std::string& name,
                 bool nap) {
  i64 id = -1;
  std::vector<std::pair<i64, std::string>> batch;
  for (int round = 0; round < 100'000; ++round) {
    if (id < 0) {
      svc::Request req;
      req.op = svc::Op::kRegister;
      Json body = Json::object();
      body.set("name", Json::string(name));
      req.fleet = std::move(body);
      const svc::Response resp = controller.call_local(req);
      ASSERT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
      id = Json::parse(resp.result).at("worker_id").as_integer("worker_id");
    }
    svc::Request req;
    req.op = svc::Op::kUnit;
    Json body = Json::object();
    body.set("worker_id", Json::integer(id));
    body.set("want", Json::integer(2));
    if (!batch.empty()) {
      Json arr = Json::array();
      for (const auto& [index, result] : batch) {
        Json entry = Json::object();
        entry.set("unit", Json::integer(index));
        entry.set("result", Json::parse(result));
        arr.push(std::move(entry));
      }
      body.set("completed", std::move(arr));
    }
    req.fleet = std::move(body);
    const svc::Response resp = controller.call_local(req);
    ASSERT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
    const Json r = Json::parse(resp.result);
    batch.clear();  // delivered — exactly-once is the merge's job now
    if (r.at("done").as_bool("done")) return;
    if (!r.at("known").as_bool("known")) {
      id = -1;  // evicted mid-run: rejoin under a fresh id
      continue;
    }
    for (const Json& u : r.at("units").as_array("units"))
      batch.emplace_back(u.at("unit").as_integer("unit"),
                         toy_result(static_cast<std::size_t>(
                             u.at("unit").as_integer("unit"))));
    if (nap && round % 8 == 7)
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  FAIL() << "local racer " << name << " never saw done";
}

}  // namespace

TEST(FleetLocalRaceTest, FastLanePollsRaceEvictionWithoutLosingUnits) {
  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.credit = 2;
  cfg.heartbeat_ms = 1;  // evict anything silent for ~1ms
  cfg.miss_threshold = 1;
  cfg.speculate = false;
  Controller controller(cfg, toy_units(32));
  controller.start();

  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i)
    threads.emplace_back([&controller, i] {
      local_racer(controller, "racer-" + std::to_string(i), /*nap=*/true);
    });
  for (std::thread& t : threads) t.join();

  const FleetStats stats = controller.stats();
  EXPECT_EQ(stats.completed, 32u);
  const std::vector<std::string> payloads = controller.merged().payloads();
  ASSERT_EQ(payloads.size(), 32u);
  for (std::size_t i = 0; i < payloads.size(); ++i)
    EXPECT_EQ(payloads[i], toy_result(i));
  controller.stop();
}

TEST(FleetLocalRaceTest, FastLaneDeregisterAndIntrospectionRacePolls) {
  ControllerConfig cfg;
  cfg.address = fresh_address();
  cfg.credit = 2;
  cfg.heartbeat_ms = 1;
  cfg.miss_threshold = 2;
  cfg.speculate = false;
  cfg.sched.policy = "fair";
  Controller controller(cfg, toy_units(16));
  controller.start();

  std::atomic<bool> finished{false};
  // Churn thread: register/deregister fresh ids and hammer the
  // introspection ops while the racers drain the queue.
  std::thread churn([&controller, &finished] {
    while (!finished.load(std::memory_order_acquire)) {
      svc::Request reg;
      reg.op = svc::Op::kRegister;
      Json body = Json::object();
      body.set("name", Json::string("churn"));
      reg.fleet = std::move(body);
      const svc::Response resp = controller.call_local(reg);
      if (resp.status == svc::RespStatus::kOk) {
        const i64 id =
            Json::parse(resp.result).at("worker_id").as_integer("worker_id");
        svc::Request dereg;
        dereg.op = svc::Op::kDeregister;
        Json b = Json::object();
        b.set("worker_id", Json::integer(id));
        dereg.fleet = std::move(b);
        controller.call_local(dereg);
      }
      for (const svc::Op op : {svc::Op::kQueue, svc::Op::kAcct,
                               svc::Op::kStats}) {
        svc::Request req;
        req.op = op;
        controller.call_local(req);
      }
    }
  });

  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i)
    threads.emplace_back([&controller, i] {
      local_racer(controller, "racer-" + std::to_string(i), /*nap=*/false);
    });
  for (std::thread& t : threads) t.join();
  finished.store(true, std::memory_order_release);
  churn.join();

  EXPECT_EQ(controller.stats().completed, 16u);
  EXPECT_EQ(controller.merged().payloads().size(), 16u);
  controller.stop();
}
