// TileDagWorkload: the Cholesky generator's shape, deterministic
// topological ordering, the ALAP lower bound's defining properties, the
// list scheduler's soundness against that bound, and the DAG route
// through the staged pipeline (Frontend → Analysis → Backend).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "tilo/machine/model.hpp"
#include "tilo/obs/report.hpp"
#include "tilo/pipeline/compiler.hpp"
#include "tilo/util/error.hpp"
#include "tilo/workload/dag.hpp"

using namespace tilo;
using util::i64;

namespace {

mach::IdealOverlapModel paper_model() {
  return mach::IdealOverlapModel(mach::MachineParams::paper_cluster());
}

}  // namespace

TEST(DagCholeskyTest, GeneratorCountsMatchTheClosedForms) {
  // nt(nt+1)(nt+2)/6 tasks: nt POTRF, nt(nt-1)/2 TRSM, nt(nt-1)/2 SYRK,
  // nt(nt-1)(nt-2)/6 GEMM.
  for (i64 nt : {1, 2, 4, 6}) {
    const auto dag = workload::make_cholesky_dag(nt, 8);
    EXPECT_EQ(dag->num_tasks(), nt * (nt + 1) * (nt + 2) / 6) << "nt=" << nt;
    i64 potrf = 0, trsm = 0, syrk = 0, gemm = 0;
    for (const workload::DagTask& t : dag->tasks()) {
      if (t.label.rfind("potrf", 0) == 0) ++potrf;
      if (t.label.rfind("trsm", 0) == 0) ++trsm;
      if (t.label.rfind("syrk", 0) == 0) ++syrk;
      if (t.label.rfind("gemm", 0) == 0) ++gemm;
    }
    EXPECT_EQ(potrf, nt);
    EXPECT_EQ(trsm, nt * (nt - 1) / 2);
    EXPECT_EQ(syrk, nt * (nt - 1) / 2);
    EXPECT_EQ(gemm, nt * (nt - 1) * (nt - 2) / 6);
  }
}

TEST(DagCholeskyTest, WeightsFollowTheKernelIterationCounts) {
  const i64 b = 16;
  const auto dag = workload::make_cholesky_dag(3, b);
  for (const workload::DagTask& t : dag->tasks()) {
    if (t.label.rfind("potrf", 0) == 0) EXPECT_EQ(t.iterations, b * b * b / 3);
    if (t.label.rfind("trsm", 0) == 0) EXPECT_EQ(t.iterations, b * b * b);
    if (t.label.rfind("syrk", 0) == 0) EXPECT_EQ(t.iterations, b * b * b);
    if (t.label.rfind("gemm", 0) == 0) EXPECT_EQ(t.iterations, 2 * b * b * b);
    // Every edge moves one b x b tile of doubles.
    for (i64 bytes : t.dep_bytes) EXPECT_EQ(bytes, b * b * 8);
    EXPECT_EQ(t.dep_bytes.size(), t.deps.size());
  }
  // domain_points is the summed work.
  i64 total = 0;
  for (const workload::DagTask& t : dag->tasks()) total += t.iterations;
  EXPECT_EQ(dag->domain_points(), total);
}

TEST(DagTopoTest, OrderRespectsEveryEdge) {
  const auto dag = workload::make_cholesky_dag(5, 8);
  const std::vector<i64> order = workload::topo_order(*dag);
  ASSERT_EQ(static_cast<i64>(order.size()), dag->num_tasks());
  std::vector<i64> position(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (i64 t = 0; t < dag->num_tasks(); ++t)
    for (i64 d : dag->tasks()[t].deps)
      EXPECT_LT(position[d], position[t])
          << dag->tasks()[d].label << " must precede " << dag->tasks()[t].label;
}

TEST(DagTopoTest, CycleIsRejectedNamingATask) {
  std::vector<workload::DagTask> tasks(2);
  tasks[0].label = "ouroboros";
  tasks[0].iterations = 1;
  tasks[0].deps = {1};
  tasks[0].dep_bytes = {8};
  tasks[1].label = "tail";
  tasks[1].iterations = 1;
  tasks[1].deps = {0};
  tasks[1].dep_bytes = {8};
  const workload::TileDagWorkload dag("cyclic", std::move(tasks));
  try {
    workload::topo_order(dag);
    FAIL() << "cycle was not detected";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("ouroboros"), std::string::npos)
        << e.what();
  }
}

TEST(DagTopoTest, MalformedEdgesAreRejectedAtConstruction) {
  std::vector<workload::DagTask> out_of_range(1);
  out_of_range[0].label = "t";
  out_of_range[0].iterations = 1;
  out_of_range[0].deps = {7};
  out_of_range[0].dep_bytes = {8};
  EXPECT_THROW(workload::TileDagWorkload("bad", std::move(out_of_range)),
               util::Error);

  std::vector<workload::DagTask> ragged(2);
  ragged[0].label = "a";
  ragged[0].iterations = 1;
  ragged[1].label = "b";
  ragged[1].iterations = 1;
  ragged[1].deps = {0};
  ragged[1].dep_bytes = {};  // not parallel to deps
  EXPECT_THROW(workload::TileDagWorkload("bad", std::move(ragged)),
               util::Error);
}

TEST(DagOwnerTest, AssignmentIsBlockCyclicOverAffinity) {
  const auto dag = workload::make_cholesky_dag(4, 8);
  const std::vector<int> owner = workload::assign_owners(*dag, 3);
  ASSERT_EQ(static_cast<i64>(owner.size()), dag->num_tasks());
  for (i64 t = 0; t < dag->num_tasks(); ++t)
    EXPECT_EQ(owner[t], static_cast<int>(dag->tasks()[t].affinity % 3));
}

TEST(DagAlapTest, BoundCombinesCriticalPathAndWorkRefinement) {
  const auto dag = workload::make_cholesky_dag(6, 32);
  const auto model = paper_model();
  for (int ranks : {1, 2, 4}) {
    const workload::AlapBound bound =
        workload::alap_lower_bound(*dag, ranks, model);
    ASSERT_EQ(static_cast<i64>(bound.alap.size()), dag->num_tasks());
    sim::Time max_alap = 0;
    for (sim::Time a : bound.alap) {
      EXPECT_GT(a, 0);
      max_alap = std::max(max_alap, a);
    }
    EXPECT_EQ(bound.critical_path_ns, max_alap);
    EXPECT_EQ(bound.bound_ns,
              std::max(bound.critical_path_ns, bound.work_bound_ns));
    // alap(t) >= w(t), and a predecessor's alap strictly dominates.
    for (i64 t = 0; t < dag->num_tasks(); ++t)
      for (i64 d : dag->tasks()[t].deps)
        EXPECT_GT(bound.alap[d], bound.alap[t]);
  }
}

TEST(DagAlapTest, MoreRanksNeverRaiseTheBound) {
  const auto dag = workload::make_cholesky_dag(6, 32);
  const auto model = paper_model();
  sim::Time prev = 0;
  for (int ranks : {8, 4, 2, 1}) {
    const sim::Time b = workload::alap_lower_bound(*dag, ranks, model).bound_ns;
    EXPECT_GE(b, prev) << ranks << " ranks";
    prev = b;
  }
}

TEST(DagRunTest, AchievedMakespanNeverBeatsTheBound) {
  const auto dag = workload::make_cholesky_dag(6, 32);
  const auto model = paper_model();
  for (int ranks : {1, 2, 3, 4, 8}) {
    const std::vector<int> owner = workload::assign_owners(*dag, ranks);
    const workload::AlapBound bound =
        workload::alap_lower_bound(*dag, ranks, model);
    const exec::RunResult run =
        workload::run_dag(*dag, owner, ranks, model, bound);
    EXPECT_GE(run.completion, bound.bound_ns) << ranks << " ranks";
    EXPECT_EQ(run.alap_lower_bound, bound.bound_ns);
    EXPECT_GT(run.events, 0u);
  }
}

TEST(DagRunTest, SingleRankMeetsTheBoundExactly) {
  // On one processor the bound degenerates to the serial work sum, which
  // the schedule achieves with no idle gaps: ratio exactly 1.0.
  const auto dag = workload::make_cholesky_dag(6, 32);
  const auto model = paper_model();
  const workload::AlapBound bound =
      workload::alap_lower_bound(*dag, 1, model);
  const exec::RunResult run = workload::run_dag(
      *dag, workload::assign_owners(*dag, 1), 1, model, bound);
  EXPECT_EQ(run.completion, bound.bound_ns);
  EXPECT_EQ(run.messages, 0);  // nothing crosses ranks
}

TEST(DagRunTest, RerunsAreByteDeterministic) {
  const auto dag = workload::make_cholesky_dag(6, 32);
  const auto model = paper_model();
  const std::vector<int> owner = workload::assign_owners(*dag, 4);
  const workload::AlapBound bound =
      workload::alap_lower_bound(*dag, 4, model);
  const exec::RunResult a = workload::run_dag(*dag, owner, 4, model, bound);
  const exec::RunResult b = workload::run_dag(*dag, owner, 4, model, bound);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.events, b.events);
}

TEST(DagRunTest, ReportSinkCapturesTheBoundNextToTheMakespan) {
  const auto dag = workload::make_cholesky_dag(6, 32);
  const auto model = paper_model();
  const std::vector<int> owner = workload::assign_owners(*dag, 4);
  const workload::AlapBound bound =
      workload::alap_lower_bound(*dag, 4, model);
  obs::ReportSink sink;
  const exec::RunResult run =
      workload::run_dag(*dag, owner, 4, model, bound, &sink);
  const obs::RunReport report = sink.report();
  EXPECT_EQ(report.makespan, run.completion);
  EXPECT_EQ(report.alap_lower_bound_ns, bound.bound_ns);
  EXPECT_GE(report.alap_bound_ratio, 1.0);
  EXPECT_DOUBLE_EQ(report.alap_bound_ratio,
                   static_cast<double>(run.completion) /
                       static_cast<double>(bound.bound_ns));
  // Nest-family reports keep the zero defaults (byte-identity guard).
  obs::ReportSink plain;
  plain.span(0, obs::Phase::kCompute, 0, 10);
  EXPECT_EQ(plain.report().alap_lower_bound_ns, 0);
  EXPECT_EQ(plain.report().alap_bound_ratio, 0.0);
}

TEST(DagPipelineTest, CompileRoutesFrontendAnalysisBackend) {
  pipeline::CompileOptions opts;
  opts.workload_kind = workload::Kind::kTileDag;
  opts.auto_procs = 4;
  const pipeline::ArtifactStore out =
      pipeline::Compiler(opts).compile_source("chol", "cholesky nt=6 b=32");
  const pipeline::DagPlanArtifact& plan = out.dag_plan();
  EXPECT_EQ(plan.ranks, 4);
  EXPECT_EQ(plan.dag->num_tasks(), 56);
  EXPECT_GT(plan.bound.bound_ns, 0);
  ASSERT_TRUE(out.backend().run);
  EXPECT_GE(out.backend().run->completion, plan.bound.bound_ns);
  EXPECT_EQ(out.backend().run->alap_lower_bound, plan.bound.bound_ns);
  // The DAG route never builds nest-family artifacts.
  EXPECT_FALSE(out.has_nest());
  EXPECT_THROW(out.plan(), util::Error);
}

TEST(DagPipelineTest, ExplicitProcsGridSetsTheRankCount) {
  pipeline::CompileOptions opts;
  opts.workload_kind = workload::Kind::kTileDag;
  opts.procs = lat::Vec({2, 3});
  const pipeline::ArtifactStore out =
      pipeline::Compiler(opts).compile_source("chol", "cholesky nt=4 b=16");
  EXPECT_EQ(out.dag_plan().ranks, 6);
}

TEST(DagPipelineTest, MalformedGeneratorSpecFailsInTheFrontend) {
  pipeline::CompileOptions opts;
  opts.workload_kind = workload::Kind::kTileDag;
  try {
    pipeline::Compiler(opts).compile_source("bad", "lu nt=4 b=16");
    FAIL() << "unknown generator accepted";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("Frontend"), std::string::npos)
        << e.what();
  }
}

TEST(DagPipelineTest, CodegenAndFunctionalModesAreRejected) {
  pipeline::CompileOptions opts;
  opts.workload_kind = workload::Kind::kTileDag;
  opts.emit_program = true;
  EXPECT_THROW(
      pipeline::Compiler(opts).compile_source("chol", "cholesky nt=4 b=16"),
      util::Error);
  opts.emit_program = false;
  opts.functional = true;
  EXPECT_THROW(
      pipeline::Compiler(opts).compile_source("chol", "cholesky nt=4 b=16"),
      util::Error);
}

TEST(DagPipelineTest, StageLogNamesTasksEdgesAndBound) {
  pipeline::CompileOptions opts;
  opts.workload_kind = workload::Kind::kTileDag;
  opts.auto_procs = 2;
  const pipeline::ArtifactStore out =
      pipeline::Compiler(opts).compile_source("chol", "cholesky nt=4 b=16");
  std::ostringstream os;
  pipeline::write_stage_log(os, out);
  const std::string log = os.str();
  EXPECT_NE(log.find("20 tasks"), std::string::npos) << log;
  EXPECT_NE(log.find("ALAP bound"), std::string::npos) << log;
  EXPECT_NE(log.find(">= ALAP bound"), std::string::npos) << log;
}
