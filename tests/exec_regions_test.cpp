// Unit tests for tilo::exec regions — the communication geometry both
// executors share.  Includes the coverage property: every cross-tile read
// of every tile is covered by some incoming region.
#include <gtest/gtest.h>

#include <set>

#include "tilo/exec/plan.hpp"
#include "tilo/exec/regions.hpp"
#include "tilo/loopnest/workloads.hpp"

using namespace tilo;
using exec::CommRegion;
using exec::TileComm;
using lat::Box;
using lat::Vec;
using loop::DependenceSet;
using loop::LoopNest;
using tile::RectTiling;
using tile::TiledSpace;
using util::i64;

TEST(RegionsTest, UnitStencilFaceRegions) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 8);
  const TiledSpace space(nest, RectTiling(Vec{4, 4, 4}));
  // Interior tile (0,0,0) -> (1,0,0): the i-high face, one layer thick.
  const auto regions = exec::comm_regions(space, Vec{0, 0, 0}, Vec{1, 0, 0});
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].points, Box(Vec{3, 0, 0}, Vec{3, 3, 3}));
  EXPECT_EQ(exec::region_points(regions), 16);
  EXPECT_EQ(exec::region_bytes(regions, 4), 64);
}

TEST(RegionsTest, ThickDependenceShipsThickSlab) {
  const LoopNest nest("thick", Box::from_extents(Vec{12, 12}),
                      DependenceSet({Vec{3, 0}}));
  const TiledSpace space(nest, RectTiling(Vec{6, 6}));
  const auto regions = exec::comm_regions(space, Vec{0, 0}, Vec{1, 0});
  ASSERT_EQ(regions.size(), 1u);
  // Rows 3..5 of the source tile feed rows 6..8 of the destination.
  EXPECT_EQ(regions[0].points, Box(Vec{3, 0}, Vec{5, 5}));
}

TEST(RegionsTest, DiagonalDependenceShipsCorner) {
  const LoopNest small("diag", Box::from_extents(Vec{8, 8}),
                       DependenceSet({Vec{1, 1}}));
  const TiledSpace space(small, RectTiling(Vec{4, 4}));
  // Corner direction (1,1): exactly the single corner point.
  const auto corner = exec::comm_regions(space, Vec{0, 0}, Vec{1, 1});
  ASSERT_EQ(corner.size(), 1u);
  EXPECT_EQ(corner[0].points, Box(Vec{3, 3}, Vec{3, 3}));
  // Face direction (1,0): the high-i edge except the corner column shifted:
  // points p with p in [3,3]x[0,3] and p+(1,1) in tile (1,0) = rows 4..7,
  // cols 0..3 -> p_col in [-1..2] -> cols 0..2.
  const auto face = exec::comm_regions(space, Vec{0, 0}, Vec{1, 0});
  ASSERT_EQ(face.size(), 1u);
  EXPECT_EQ(face[0].points, Box(Vec{3, 0}, Vec{3, 2}));
}

TEST(RegionsTest, PartialBoundaryTilesClipRegions) {
  const LoopNest nest = loop::stencil3d_nest(6, 4, 4);  // dim0: tiles 4+2
  const TiledSpace space(nest, RectTiling(Vec{4, 4, 4}));
  const auto regions = exec::comm_regions(space, Vec{0, 0, 0}, Vec{1, 0, 0});
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].points.volume(), 16);  // full face still needed
  // No tile beyond the boundary: empty region list.
  EXPECT_TRUE(exec::comm_regions(space, Vec{1, 0, 0}, Vec{1, 0, 0}).empty());
}

TEST(RegionsTest, MultipleDepsProduceOneRegionEach) {
  const LoopNest nest("multi", Box::from_extents(Vec{8, 8}),
                      DependenceSet({Vec{1, 0}, Vec{2, 0}}));
  const TiledSpace space(nest, RectTiling(Vec{4, 4}));
  const auto regions = exec::comm_regions(space, Vec{0, 0}, Vec{1, 0});
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].points, Box(Vec{3, 0}, Vec{3, 3}));  // d = (1,0)
  EXPECT_EQ(regions[1].points, Box(Vec{2, 0}, Vec{3, 3}));  // d = (2,0)
  // Per-dependence multiplicity matches the paper's V_comm accounting.
  EXPECT_EQ(exec::region_points(regions), 4 + 8);
}

TEST(RegionsTest, OutgoingAndIncomingAreSymmetric) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 12);
  const TiledSpace space(nest, RectTiling(Vec{4, 4, 4}));
  space.for_each_tile([&](const Vec& t) {
    for (const TileComm& out : exec::outgoing(space, t)) {
      const auto in = exec::incoming(space, t + out.offset);
      bool found = false;
      for (const TileComm& cand : in) {
        if (cand.offset == out.offset) {
          found = true;
          EXPECT_EQ(cand.points, out.points);
          ASSERT_EQ(cand.regions.size(), out.regions.size());
          for (std::size_t i = 0; i < cand.regions.size(); ++i)
            EXPECT_EQ(cand.regions[i].points, out.regions[i].points);
        }
      }
      EXPECT_TRUE(found) << "no matching incoming for offset "
                         << out.offset.str();
    }
  });
}

// Coverage property: for every tile T and every point p in T, every input
// p - d that lies inside the domain but outside T is covered by exactly the
// incoming region for the producing tile's direction.
TEST(RegionsTest, IncomingRegionsCoverAllCrossTileReads) {
  const LoopNest nest("cover", Box::from_extents(Vec{7, 9}),
                      DependenceSet({Vec{1, 1}, Vec{1, 0}, Vec{0, 2}}));
  const TiledSpace space(nest, RectTiling(Vec{3, 4}));
  space.for_each_tile([&](const Vec& t) {
    // Gather all points delivered to tile t, per direction.
    std::set<std::vector<i64>> delivered;
    for (const TileComm& in : exec::incoming(space, t))
      for (const CommRegion& r : in.regions)
        r.points.for_each_point(
            [&](const Vec& p) { delivered.insert(p.data()); });

    const Box mine = space.tile_iterations(t);
    mine.for_each_point([&](const Vec& p) {
      for (const Vec& d : nest.deps().vectors()) {
        const Vec src = p - d;
        if (!nest.domain().contains(src)) continue;  // boundary value
        if (mine.contains(src)) continue;            // tile-local
        EXPECT_TRUE(delivered.count(src.data()))
            << "tile " << t.str() << " read " << src.str()
            << " not delivered";
      }
    });
  });
}

TEST(PlanTest, ScheduleLengthUsesClosedForms) {
  const LoopNest nest = loop::stencil3d_nest(16, 16, 64);
  const auto over = exec::make_plan(nest, RectTiling(Vec{4, 4, 8}),
                                    sched::ScheduleKind::kOverlap);
  EXPECT_EQ(over.mapped_dim, 2u);  // tile space 4x4x8, largest is k
  EXPECT_EQ(over.schedule_length(), 2 * 3 + 2 * 3 + 7 + 1);
  const auto non = exec::make_plan(nest, RectTiling(Vec{4, 4, 8}),
                                   sched::ScheduleKind::kNonOverlap);
  EXPECT_EQ(non.schedule_length(), 3 + 3 + 7 + 1);
}

TEST(PlanTest, ExplicitMappingOverridesLargestRule) {
  const LoopNest nest = loop::stencil3d_nest(16, 16, 16);
  const auto plan = exec::make_plan_explicit(
      nest, RectTiling(Vec{4, 4, 4}), sched::ScheduleKind::kOverlap, 2,
      Vec{4, 4, 1});
  EXPECT_EQ(plan.mapped_dim, 2u);
  EXPECT_EQ(plan.mapping.num_ranks(), 16);
}
