// Failure-injection tests: a lost message must surface as a loud stall
// diagnostic, never as silent partial results.
#include <gtest/gtest.h>

#include "tilo/exec/run.hpp"
#include "tilo/loopnest/workloads.hpp"

using namespace tilo;
using lat::Vec;
using loop::LoopNest;
using sched::ScheduleKind;

namespace {

mach::MachineParams fast_params() {
  mach::MachineParams p;
  p.t_c = 1e-6;
  p.t_t = 0.01e-6;
  p.bytes_per_element = 8;
  p.wire_latency = 2e-6;
  p.fill_mpi_buffer = mach::AffineCost{5e-6, 0.0};
  p.fill_kernel_buffer = mach::AffineCost{5e-6, 0.0};
  return p;
}

}  // namespace

class MessageLossTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MessageLossTest, LostMessageIsDetectedAsStall) {
  const auto [kind_idx, which] = GetParam();
  const auto kind = kind_idx == 0 ? ScheduleKind::kNonOverlap
                                  : ScheduleKind::kOverlap;
  const LoopNest nest = loop::stencil3d_nest(8, 8, 16);
  const exec::TilePlan plan =
      exec::make_plan(nest, tile::RectTiling(Vec{4, 4, 4}), kind);
  exec::RunOptions opts;
  opts.faults.drop_message = which;  // lose an early or a late message
  try {
    exec::run_plan(nest, plan, fast_params(), opts);
    FAIL() << "expected a stall diagnostic";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("stalled"), std::string::npos)
        << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndIndexes, MessageLossTest,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 7)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == 0 ? "blocking"
                                                      : "nonblocking") +
             "_msg" + std::to_string(std::get<1>(info.param));
    });

TEST(MessageLossTest, NoInjectionStillCompletes) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 16);
  const exec::TilePlan plan = exec::make_plan(
      nest, tile::RectTiling(Vec{4, 4, 4}), ScheduleKind::kOverlap);
  exec::RunOptions opts;
  opts.faults.drop_message = -1;
  EXPECT_NO_THROW(exec::run_plan(nest, plan, fast_params(), opts));
}

TEST(MessageLossTest, DropBeyondTrafficIsHarmless) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 16);
  const exec::TilePlan plan = exec::make_plan(
      nest, tile::RectTiling(Vec{4, 4, 4}), ScheduleKind::kOverlap);
  exec::RunOptions opts;
  opts.faults.drop_message = 1'000'000;  // more than the run ever sends
  EXPECT_NO_THROW(exec::run_plan(nest, plan, fast_params(), opts));
}

TEST(MessageLossTest, SenderOfLostMessageStillProgresses) {
  // The wire loss completes the local send, so only the receiver side
  // stalls — the diagnostic must report fewer-than-all but more-than-zero
  // completed ranks on a multi-rank run.
  const LoopNest nest = loop::stencil3d_nest(8, 8, 16);
  const exec::TilePlan plan = exec::make_plan(
      nest, tile::RectTiling(Vec{4, 4, 4}), ScheduleKind::kOverlap);
  exec::RunOptions opts;
  opts.faults.drop_message = 3;
  try {
    exec::run_plan(nest, plan, fast_params(), opts);
    FAIL() << "expected a stall diagnostic";
  } catch (const util::Error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("only 0 of"), std::string::npos) << what;
  }
}
