// Chaos tests for the replicated plan-store tier: real `tilo_cli --serve`
// processes on the other side of the socket, killed with SIGKILL (no
// drain, no goodbye) or handed corrupted segment logs, with the client-
// visible contract checked from outside:
//
//   * a replica SIGKILLed between requests costs the client one failover,
//     not an answer — and the failover answer is byte-identical, because
//     the pipeline is deterministic and responses splice result bytes
//     verbatim;
//   * a SIGKILLed server restarts into its plan store: every response the
//     old process ever sent was preceded by its write-through append, so
//     the restarted process serves those keys from the rehydrated store
//     without recompiling;
//   * a corrupt segment-log tail costs exactly the torn record — the
//     restarted server rehydrates the intact prefix, says so with a
//     warning, and keeps serving.
//
// These run fork + exec and so live in ForkStoreChaosTest, excluded from
// the TSan preset by name (TSan and fork() do not mix).
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "tilo/pipeline/json.hpp"
#include "tilo/store/ring.hpp"
#include "tilo/svc/client.hpp"
#include "tilo/svc/ring_client.hpp"
#include "tilo/svc/server.hpp"
#include "tilo/util/error.hpp"

#ifndef TILO_CLI_PATH
#error "TILO_CLI_PATH must be defined by the build"
#endif

namespace svc = tilo::svc;
namespace store = tilo::store;
using tilo::pipeline::Json;
using tilo::util::i64;

namespace {

std::string fresh_name(const char* tag, const char* suffix) {
  static int counter = 0;
  return ::testing::TempDir() + "store_chaos_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++) +
         suffix;
}

constexpr const char* kQuickSource =
    "FOR i = 0 TO 15\n FOR j = 0 TO 255\n"
    "  Q(i, j) = 0.5 * (Q(i-1, j) + Q(i, j-1))\n ENDFOR\nENDFOR\n";

svc::CompileParams quick_params(std::string name = "quick") {
  svc::CompileParams p;
  p.name = std::move(name);
  p.source = kQuickSource;
  p.procs = tilo::lat::Vec(std::vector<i64>{4, 1});
  p.height = 16;
  return p;
}

/// Forks and execs `tilo_cli --serve address --store-dir dir`, stdout and
/// stderr redirected to `log_path`.  Returns the child pid.
pid_t spawn_server(const std::string& address, const std::string& store_dir,
                   const std::string& log_path) {
  const pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    std::freopen(log_path.c_str(), "a", stdout);
    std::freopen(log_path.c_str(), "a", stderr);
    execl(TILO_CLI_PATH, TILO_CLI_PATH, "--serve", address.c_str(),
          "--store-dir", store_dir.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  return pid;
}

/// Polls until the server at `address` answers a ping (the socket appears
/// asynchronously after exec).
void wait_ready(const std::string& address) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    try {
      svc::Client client = svc::Client::connect(address);
      if (client.ping().status == svc::RespStatus::kOk) return;
    } catch (const tilo::util::Error&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "server at " << address << " never became ready";
}

void graceful_stop(const std::string& address, pid_t pid) {
  try {
    svc::Client client = svc::Client::connect(address);
    (void)client.shutdown_server();
  } catch (const tilo::util::Error&) {
    // Already gone; the waitpid below still reaps it.
  }
  int wstatus = 0;
  EXPECT_EQ(waitpid(pid, &wstatus, 0), pid);
}

void sigkill(pid_t pid) {
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The store_* counters out of a stats response.
Json stats_json(svc::Client& client) {
  const svc::Response resp = client.stats();
  EXPECT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
  return Json::parse(resp.result);
}

}  // namespace

// ---------------------------------------------------------------------------

TEST(ForkStoreChaosTest, SigkilledReplicaFailsOverByteIdentical) {
  struct Replica {
    std::string address;
    std::string dir;
    pid_t pid = -1;
  };
  std::vector<Replica> replicas(3);
  std::vector<std::string> addresses;
  for (Replica& r : replicas) {
    r.address = "unix:" + fresh_name("failover", ".sock");
    r.dir = fresh_name("failover", "");
    r.pid = spawn_server(r.address, r.dir, fresh_name("failover", ".log"));
    addresses.push_back(r.address);
  }
  for (const Replica& r : replicas) wait_ready(r.address);

  svc::RingClient ring(addresses);
  const svc::CompileParams params = quick_params("chaos");
  const std::size_t owner = ring.route(params);

  // The admitted request: the owner compiles and answers.
  const svc::Response first = ring.compile(params);
  ASSERT_EQ(first.status, svc::RespStatus::kOk) << first.error;
  ASSERT_FALSE(first.result.empty());

  // SIGKILL the serving replica — no drain, no deregister.  The ring
  // client's sticky connection to it is now a dead socket.
  sigkill(replicas[owner].pid);

  // The same key again: the dead owner costs a failover, and the next arc
  // owner's fresh compile answers with the exact same bytes.
  const svc::Response second = ring.compile(params);
  ASSERT_EQ(second.status, svc::RespStatus::kOk) << second.error;
  EXPECT_EQ(second.result, first.result);
  EXPECT_GE(ring.failovers(), 1u);

  for (std::size_t i = 0; i < replicas.size(); ++i)
    if (i != owner) graceful_stop(replicas[i].address, replicas[i].pid);
}

TEST(ForkStoreChaosTest, SigkilledServerRehydratesWithoutRecompiling) {
  const std::string dir = fresh_name("rehydrate", "");
  const std::string address = "unix:" + fresh_name("rehydrate", ".sock");
  const pid_t pid =
      spawn_server(address, dir, fresh_name("rehydrate", ".log"));
  wait_ready(address);

  std::string warm_bytes;
  {
    svc::Client client = svc::Client::connect(address);
    const svc::Response r = client.compile(quick_params("rehydrate"));
    ASSERT_EQ(r.status, svc::RespStatus::kOk) << r.error;
    warm_bytes = r.result;
  }
  // The response arrived, so the write-through append preceded it.  Kill
  // the process without any shutdown path.
  sigkill(pid);

  // A fresh server (in-process this time) over the same store directory
  // answers the warm key from the rehydrated store: byte-identical bytes,
  // zero compiles.
  svc::ServerConfig cfg;
  cfg.address = "unix:" + fresh_name("rehydrate2", ".sock");
  cfg.workers = 2;
  cfg.store_dir = dir;
  svc::Server server(cfg);
  server.start();
  ASSERT_NE(server.plan_store(), nullptr);
  EXPECT_GE(server.plan_store()->rehydrated(), 1u);
  svc::Client client = svc::Client::connect(cfg.address);
  const svc::Response r = client.compile(quick_params("rehydrate"));
  ASSERT_EQ(r.status, svc::RespStatus::kOk) << r.error;
  EXPECT_EQ(r.result, warm_bytes);
  const svc::ServerStats stats = server.stats();
  EXPECT_EQ(stats.compiles, 0u) << "the warm key was recompiled";
  EXPECT_EQ(stats.store_hits, 1u);
  server.stop();
}

TEST(ForkStoreChaosTest, CorruptLogTailSkipsOnlyTheTornRecordWithWarning) {
  const std::string dir = fresh_name("corrupt", "");
  const std::string address = "unix:" + fresh_name("corrupt", ".sock");
  {
    const pid_t pid =
        spawn_server(address, dir, fresh_name("corrupt", ".log"));
    wait_ready(address);
    svc::Client client = svc::Client::connect(address);
    // Two records, append order "keep" then "lose".
    std::string keep_bytes;
    const svc::Response keep = client.compile(quick_params("keep"));
    ASSERT_EQ(keep.status, svc::RespStatus::kOk) << keep.error;
    const svc::Response lose = client.compile(quick_params("lose"));
    ASSERT_EQ(lose.status, svc::RespStatus::kOk) << lose.error;
    graceful_stop(address, pid);
  }
  // Corrupt the log tail: chop bytes off the last record, the torn state
  // a crash mid-append (or disk truncation) leaves behind.
  const std::string segment = dir + "/seg-000001.log";
  std::ifstream in(segment, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(in.good()) << segment;
  const auto size = static_cast<long>(in.tellg());
  in.close();
  ASSERT_EQ(::truncate(segment.c_str(), size - 9), 0);

  // Restart over the corrupt log, capturing the banner and the warning.
  const std::string address2 = "unix:" + fresh_name("corrupt2", ".sock");
  const std::string log_path = fresh_name("corrupt2", ".log");
  const pid_t pid = spawn_server(address2, dir, log_path);
  wait_ready(address2);
  svc::Client client = svc::Client::connect(address2);

  // Exactly the intact record rehydrated; the torn one is gone.
  Json stats = stats_json(client);
  EXPECT_EQ(stats.at("store_rehydrated").as_integer("store_rehydrated"), 1);
  // The intact key serves warm (no compile); the torn key recompiles.
  const svc::Response keep = client.compile(quick_params("keep"));
  ASSERT_EQ(keep.status, svc::RespStatus::kOk) << keep.error;
  const svc::Response lose = client.compile(quick_params("lose"));
  ASSERT_EQ(lose.status, svc::RespStatus::kOk) << lose.error;
  stats = stats_json(client);
  EXPECT_EQ(stats.at("store_hits").as_integer("store_hits"), 1);
  EXPECT_EQ(stats.at("compiles").as_integer("compiles"), 1);
  graceful_stop(address2, pid);

  // The operator saw it: the serve banner carries the replay warning.
  const std::string log = slurp(log_path);
  EXPECT_NE(log.find("warning:"), std::string::npos) << log;
  EXPECT_NE(log.find("skipped"), std::string::npos) << log;
}
