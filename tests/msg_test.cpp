// Unit tests for tilo::msg — the simulated MPI-like layer: matching,
// nonblocking pipelines, blocking transfers, channel sharing and network
// models.  Timings are verified against hand-computed stage sums.
#include <gtest/gtest.h>

#include <memory>

#include "tilo/msg/cluster.hpp"
#include "tilo/msg/endpoint.hpp"
#include "tilo/trace/timeline.hpp"

using namespace tilo;
using mach::AffineCost;
using mach::MachineParams;
using mach::OverlapLevel;
using msg::Cluster;
using msg::Network;
using sim::Time;
using util::i64;

namespace {

/// Simple round numbers so stage sums are easy to verify:
/// fill_mpi = 10 us, fill_kernel = 20 us, wire = 1 us/B (0.5 each half),
/// latency = 5 us, t_c = 1 us.
MachineParams test_params() {
  MachineParams p;
  p.t_c = 1e-6;
  p.t_t = 1e-6;
  p.bytes_per_element = 4;
  p.wire_latency = 5e-6;
  p.fill_mpi_buffer = AffineCost{10e-6, 0.0};
  p.fill_kernel_buffer = AffineCost{20e-6, 0.0};
  return p;
}

constexpr Time kUs = 1000;  // ns per microsecond

}  // namespace

TEST(ClusterTest, CostConversions) {
  Cluster c(2, test_params());
  EXPECT_EQ(c.fill_mpi_ns(123), 10 * kUs);
  EXPECT_EQ(c.fill_kernel_ns(123), 20 * kUs);
  EXPECT_EQ(c.half_wire_ns(100), 50 * kUs);
  EXPECT_EQ(c.latency_ns(), 5 * kUs);
  EXPECT_EQ(c.compute_ns(7), 7 * kUs);
}

TEST(ClusterTest, InvalidRankThrows) {
  Cluster c(2, test_params());
  EXPECT_THROW(c.node(2), util::Error);
  EXPECT_THROW(c.node(0).isend(0, 1, 8), util::Error);   // self-send
  EXPECT_THROW(c.node(0).isend(9, 1, 8), util::Error);   // bad dest
  EXPECT_THROW(c.node(0).irecv(0, 1), util::Error);      // self-recv
}

TEST(ClusterTest, IsendRequiresDmaLevel) {
  Cluster c(2, test_params(), OverlapLevel::kNone);
  EXPECT_THROW(c.node(0).isend(1, 1, 8), util::Error);
  EXPECT_NO_THROW(c.node(0).post_blocking(1, 1, 8));
}

TEST(TransferTest, NonblockingPipelineTiming) {
  // Message of 100 B: sender channel B3+B4 = 20 + 50 = 70 us, done at 70;
  // +latency 5 -> receiver channel B1+B2 = 50 + 20 = 70; kernel-ready at
  // 145 us.
  Cluster c(2, test_params());
  Time send_done = -1;
  Time recv_ready = -1;
  auto rh = c.node(1).irecv(0, 7);
  msg::Endpoint::when_ready(rh, [&] { recv_ready = c.engine().now(); });
  c.engine().at(0, [&] {
    auto sh = c.node(0).isend(1, 7, 100);
    // The cluster keeps the handle alive while the transfer is in flight,
    // so the waiter (a trivially-copyable SmallCallback) needs no capture
    // of sh.
    msg::Endpoint::when_done(sh, [&] { send_done = c.engine().now(); });
  });
  c.run();
  EXPECT_EQ(send_done, 70 * kUs);
  EXPECT_EQ(recv_ready, 145 * kUs);
  EXPECT_EQ(c.messages_sent(), 1);
  EXPECT_EQ(c.bytes_sent(), 100);
}

TEST(TransferTest, SharedChannelSerializesTwoSends) {
  // Two 100 B sends from the same node on one DMA channel: the second's
  // pipeline starts when the first's B3+B4 finishes.
  Cluster c(3, test_params(), OverlapLevel::kDma);
  Time ready1 = -1;
  Time ready2 = -1;
  auto r1 = c.node(1).irecv(0, 1);
  auto r2 = c.node(2).irecv(0, 2);
  msg::Endpoint::when_ready(r1, [&] { ready1 = c.engine().now(); });
  msg::Endpoint::when_ready(r2, [&] { ready2 = c.engine().now(); });
  c.engine().at(0, [&] {
    c.node(0).isend(1, 1, 100);
    c.node(0).isend(2, 2, 100);
  });
  c.run();
  EXPECT_EQ(ready1, 145 * kUs);
  EXPECT_EQ(ready2, (70 + 75 + 70) * kUs);  // second leaves at 140
}

TEST(TransferTest, ReceiveChannelSharedWithSendsUnderKDma) {
  // Under kDma one channel carries both directions on a node: an incoming
  // message's B1+B2 must queue behind an outgoing B3+B4 in progress.
  Cluster c(2, test_params(), OverlapLevel::kDma);
  Time ready = -1;
  auto r = c.node(1).irecv(0, 1);
  msg::Endpoint::when_ready(r, [&] { ready = c.engine().now(); });
  c.engine().at(0, [&] {
    c.node(0).isend(1, 1, 100);   // arrives at node 1 at t = 75 us
    c.node(1).isend(0, 9, 100);   // occupies node 1's channel [0, 70]
  });
  c.run();
  // Receive leg starts at 75 (after its own channel frees at 70 and the
  // wire-arrival at 75), so ready at 75 + 70 = 145.
  EXPECT_EQ(ready, 145 * kUs);
}

TEST(TransferTest, DuplexChannelsDoNotInterfere) {
  // Same scenario at kDuplexDma: receives use their own channel.
  Cluster c(2, test_params(), OverlapLevel::kDuplexDma);
  Time ready = -1;
  auto r = c.node(1).irecv(0, 1);
  msg::Endpoint::when_ready(r, [&] { ready = c.engine().now(); });
  c.engine().at(0, [&] {
    c.node(0).isend(1, 1, 100);
    c.node(1).isend(0, 9, 100);  // send channel only
  });
  c.run();
  EXPECT_EQ(ready, 145 * kUs);  // unchanged, but now trivially so
}

TEST(TransferTest, SharedBusSerializesAllWireTime) {
  // Two simultaneous transfers between disjoint pairs: on a switched
  // network they proceed in parallel; on a shared bus the second frame
  // waits for the first (100 us of wire each).
  auto run_net = [](Network net) {
    Cluster c(4, test_params(), OverlapLevel::kDma, net);
    Time last_ready = -1;
    auto r1 = c.node(1).irecv(0, 1);
    auto r2 = c.node(3).irecv(2, 2);
    msg::Endpoint::when_ready(r1, [&] { last_ready = std::max(last_ready,
                                                              c.engine().now()); });
    msg::Endpoint::when_ready(r2, [&] { last_ready = std::max(last_ready,
                                                              c.engine().now()); });
    c.engine().at(0, [&] {
      c.node(0).isend(1, 1, 100);
      c.node(2).isend(3, 2, 100);
    });
    c.run();
    return last_ready;
  };
  const Time switched = run_net(Network::kSwitched);
  const Time bus = run_net(Network::kSharedBus);
  EXPECT_EQ(switched, 145 * kUs);
  EXPECT_GT(bus, switched);
}

TEST(MatchingTest, ArrivalBeforePostMatchesImmediately) {
  Cluster c(2, test_params());
  bool ready_at_post = false;
  c.engine().at(0, [&] { c.node(0).isend(1, 42, 8); });
  // Post the receive long after the message landed.
  c.engine().at(1'000'000'000, [&] {
    auto h = c.node(1).irecv(0, 42);
    ready_at_post = h->ready;
  });
  c.run();
  EXPECT_TRUE(ready_at_post);
}

TEST(MatchingTest, TagsKeepMessagesApart) {
  Cluster c(2, test_params());
  auto ha = c.node(1).irecv(0, 1);
  auto hb = c.node(1).irecv(0, 2);
  bool a_ready_first = false;
  msg::Endpoint::when_ready(hb, [&] { a_ready_first = ha->ready; });
  c.engine().at(0, [&] {
    // Send tag 1 first; tag 2 second — each matches its own handle even
    // though both come from the same source.
    c.node(0).isend(1, 1, 8);
    c.node(0).isend(1, 2, 8);
  });
  c.run();
  EXPECT_TRUE(ha->ready);
  EXPECT_TRUE(hb->ready);
  EXPECT_TRUE(a_ready_first);  // FIFO on the shared channel
}

TEST(MatchingTest, SameTagFifoWithinKey) {
  Cluster c(2, test_params());
  // Payloads distinguish the two messages.
  auto p1 = std::make_shared<std::vector<double>>(std::vector<double>{1.0});
  auto p2 = std::make_shared<std::vector<double>>(std::vector<double>{2.0});
  c.engine().at(0, [&] {
    c.node(0).isend(1, 5, 8, msg::Payload{p1});
    c.node(0).isend(1, 5, 8, msg::Payload{p2});
  });
  c.run();
  auto h1 = c.node(1).irecv(0, 5);
  auto h2 = c.node(1).irecv(0, 5);
  ASSERT_TRUE(h1->ready && h2->ready);
  EXPECT_DOUBLE_EQ((*h1->payload.data)[0], 1.0);
  EXPECT_DOUBLE_EQ((*h2->payload.data)[0], 2.0);
}

TEST(BlockingPathTest, DeliversAfterLatencyOnly) {
  // The blocking path models the CPU doing all the work: the message
  // itself only carries the propagation latency.
  Cluster c(2, test_params(), OverlapLevel::kNone);
  Time ready = -1;
  auto h = c.node(1).irecv(0, 3);
  msg::Endpoint::when_ready(h, [&] { ready = c.engine().now(); });
  c.engine().at(0, [&] { c.node(0).post_blocking(1, 3, 64); });
  c.run();
  EXPECT_EQ(ready, 5 * kUs);
}

TEST(CpuTest, RecordsPhaseAndAdvancesClock) {
  trace::Timeline tl;
  Cluster c(1, test_params(), OverlapLevel::kDma, Network::kSwitched, &tl);
  Time after = -1;
  c.engine().at(0, [&] {
    c.node(0).cpu(12 * kUs, trace::Phase::kCompute,
                  [&] { after = c.engine().now(); }, "tile");
  });
  c.run();
  EXPECT_EQ(after, 12 * kUs);
  ASSERT_EQ(tl.intervals().size(), 1u);
  EXPECT_EQ(tl.intervals()[0].phase, trace::Phase::kCompute);
  EXPECT_EQ(tl.intervals()[0].end, 12 * kUs);
  EXPECT_EQ(tl.intervals()[0].label, "tile");
}

TEST(TimelineIntegrationTest, TransferRecordsDmaAndWirePhases) {
  trace::Timeline tl;
  Cluster c(2, test_params(), OverlapLevel::kDma, Network::kSwitched, &tl);
  c.node(1).irecv(0, 1);
  c.engine().at(0, [&] { c.node(0).isend(1, 1, 100); });
  c.run();
  EXPECT_GT(tl.phase_time(0, trace::Phase::kKernelSend), 0);
  EXPECT_GT(tl.phase_time(0, trace::Phase::kWire), 0);
  EXPECT_GT(tl.phase_time(1, trace::Phase::kKernelRecv), 0);
}

TEST(TrafficTest, MatrixAccumulatesPerPair) {
  Cluster c(3, test_params());
  c.node(1).irecv(0, 1);
  c.node(2).irecv(0, 2);
  c.node(2).irecv(1, 3);
  c.engine().at(0, [&] {
    c.node(0).isend(1, 1, 100);
    c.node(0).isend(2, 2, 50);
    c.node(1).isend(2, 3, 25);
  });
  c.run();
  const auto& m = c.traffic();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at({0, 1}), 100);
  EXPECT_EQ(m.at({0, 2}), 50);
  EXPECT_EQ(m.at({1, 2}), 25);
}

TEST(TrafficTest, PeakInflightTracksConcurrentMessages) {
  Cluster c(3, test_params());
  c.node(1).irecv(0, 1);
  c.node(2).irecv(0, 2);
  c.engine().at(0, [&] {
    c.node(0).isend(1, 1, 100);
    c.node(0).isend(2, 2, 100);
  });
  c.run();
  EXPECT_EQ(c.peak_inflight_bytes(), 200);  // both in flight at once
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalTimes) {
  auto run = [] {
    Cluster c(4, test_params());
    for (int r = 1; r < 4; ++r) c.node(r).irecv(0, r);
    c.engine().at(0, [&] {
      for (int r = 1; r < 4; ++r) c.node(0).isend(r, r, 64 * r);
    });
    return c.run();
  };
  EXPECT_EQ(run(), run());
}
