// Unit tests for the mach::Model machine-model API: the ideal model's
// bit-identity with the free-function cost path (the deprecation
// contract), the interference model's beta/Mcrit semantics, heterogeneous
// links, the offload-level lattice, and the model registry.
#include <gtest/gtest.h>

#include <memory>

#include "tilo/machine/cost.hpp"
#include "tilo/machine/model.hpp"
#include "tilo/machine/params.hpp"

using namespace tilo;
using mach::InterferenceConfig;
using mach::InterferenceModel;
using mach::OverlapLevel;
using mach::StepCost;
using mach::StepShape;
using util::i64;

namespace {

StepShape paper_shape() {
  StepShape shape;
  shape.iterations = 16 * 444;
  shape.working_set_bytes = 4 * 16 * 444;
  shape.send_bytes = {4 * 444, 4 * 444};
  shape.recv_bytes = {4 * 444, 4 * 444};
  return shape;
}

}  // namespace

TEST(ModelTest, IdealModelStepIsBitIdenticalToStepCost) {
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  const mach::IdealOverlapModel model(p);
  for (i64 v : {1, 7, 64, 444, 4096}) {
    StepShape shape;
    shape.iterations = 16 * v;
    shape.send_bytes = {4 * v};
    shape.recv_bytes = {4 * v, 8 * v};
    const StepCost direct = mach::step_cost(p, shape);
    const StepCost via_model = model.step(shape);
    // Exact == on doubles: the model hooks must replicate the historical
    // accumulation order, not merely approximate it.
    EXPECT_EQ(via_model.a1, direct.a1);
    EXPECT_EQ(via_model.a2, direct.a2);
    EXPECT_EQ(via_model.a3, direct.a3);
    EXPECT_EQ(via_model.b1, direct.b1);
    EXPECT_EQ(via_model.b2, direct.b2);
    EXPECT_EQ(via_model.b3, direct.b3);
    EXPECT_EQ(via_model.b4, direct.b4);
    for (auto level : {OverlapLevel::kNone, OverlapLevel::kDma,
                       OverlapLevel::kDuplexDma})
      EXPECT_EQ(model.step_seconds(shape, level), direct.step_time(level));
  }
}

TEST(ModelTest, IdealModelReportsItself) {
  const mach::IdealOverlapModel model(mach::MachineParams::paper_cluster());
  EXPECT_TRUE(model.ideal());
  EXPECT_EQ(model.kind(), "ideal");
  EXPECT_DOUBLE_EQ(model.send_interference_seconds(4096), 0.0);
  EXPECT_DOUBLE_EQ(model.recv_interference_seconds(4096), 0.0);
}

TEST(ModelTest, BetaOneInterferenceIsBitIdenticalToIdeal) {
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  const mach::IdealOverlapModel ideal(p);
  const InterferenceModel beta1(p, InterferenceConfig{});
  EXPECT_FALSE(beta1.ideal());
  const StepShape shape = paper_shape();
  for (auto level : {OverlapLevel::kNone, OverlapLevel::kDma,
                     OverlapLevel::kDuplexDma})
    EXPECT_EQ(beta1.step_seconds(shape, level),
              ideal.step_seconds(shape, level));
  EXPECT_EQ(beta1.send_interference_seconds(4096), 0.0);
  EXPECT_EQ(beta1.recv_interference_seconds(4096), 0.0);
}

TEST(ModelTest, ImperfectOverlapTaxesTheCpuSide) {
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  const mach::IdealOverlapModel ideal(p);
  InterferenceConfig c;
  c.beta_kernel = 0.5;
  c.beta_wire = 0.8;
  const InterferenceModel model(p, c);
  const StepShape shape = paper_shape();
  const StepCost cost = model.step(shape);
  // CPU-bound shape: the overlapped step is exactly cpu + (1-beta) taxes.
  ASSERT_GT(cost.cpu_side(), cost.comm_side());
  const double expected =
      cost.cpu_side() + (1.0 - c.beta_kernel) * (cost.b2 + cost.b3) +
      (1.0 - c.beta_wire) * (cost.b1 + cost.b4);
  EXPECT_DOUBLE_EQ(model.step_seconds(shape, OverlapLevel::kDma), expected);
  EXPECT_GT(model.step_seconds(shape, OverlapLevel::kDma),
            ideal.step_seconds(shape, OverlapLevel::kDma));
  // The non-overlapping step pays everything serially either way.
  EXPECT_EQ(model.step_seconds(shape, OverlapLevel::kNone),
            ideal.step_seconds(shape, OverlapLevel::kNone));
  EXPECT_GT(model.send_interference_seconds(4096), 0.0);
  EXPECT_GT(model.recv_interference_seconds(4096), 0.0);
}

TEST(ModelTest, McritCurveIsContinuousWithSteeperHead) {
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  InterferenceConfig c;
  c.mcrit = 8192;
  c.factor_below = 2.0;
  const InterferenceModel model(p, c);
  const double per = p.fill_kernel_buffer.per_byte;
  // Below the breakpoint the slope is factor_below * per_byte...
  EXPECT_NEAR(model.fill_kernel_seconds(2048) -
                  model.fill_kernel_seconds(1024),
              c.factor_below * per * 1024, 1e-15);
  // ...above it the tail slope, and the curve is continuous at Mcrit.
  EXPECT_NEAR(model.fill_kernel_seconds(32768) -
                  model.fill_kernel_seconds(16384),
              per * 16384, 1e-15);
  EXPECT_NEAR(model.fill_kernel_seconds(c.mcrit + 1) -
                  model.fill_kernel_seconds(c.mcrit),
              per, per);
  // mcrit = 0 degenerates to the plain affine curve exactly.
  const InterferenceModel plain(p, InterferenceConfig{});
  EXPECT_EQ(plain.fill_kernel_seconds(4096), p.fill_kernel_buffer.at(4096));
}

TEST(ModelTest, HeteroLinksOverridePerPairAndFallBack) {
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  mach::HeteroConfig c;
  c.links.push_back(mach::LinkParams{0, 1, 10 * p.t_t, 5 * p.wire_latency});
  const mach::HeteroLinkModel model(p, c);
  // The configured pair pays its own wire; every other pair the default.
  EXPECT_DOUBLE_EQ(model.half_wire_seconds(1000, 0, 1),
                   0.5 * 10 * p.t_t * 1000);
  EXPECT_DOUBLE_EQ(model.half_wire_seconds(1000, 1, 0),
                   0.5 * p.t_t * 1000);
  EXPECT_DOUBLE_EQ(model.wire_latency_seconds(0, 1), 5 * p.wire_latency);
  EXPECT_DOUBLE_EQ(model.wire_latency_seconds(2, 3), p.wire_latency);
}

TEST(ModelTest, SwitchContentionStretchesMultiFlowSteps) {
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  mach::HeteroConfig none;
  mach::HeteroConfig contended;
  contended.contention = 0.5;
  const mach::HeteroLinkModel free_model(p, none);
  const mach::HeteroLinkModel busy_model(p, contended);

  StepShape one_flow;
  one_flow.iterations = 1;
  one_flow.send_bytes = {65536};
  // A single flow sees no contention under either model.
  EXPECT_EQ(busy_model.step_seconds(one_flow, OverlapLevel::kDma),
            free_model.step_seconds(one_flow, OverlapLevel::kDma));

  StepShape four_flows;
  four_flows.iterations = 1;
  four_flows.send_bytes = {65536, 65536};
  four_flows.recv_bytes = {65536, 65536};
  EXPECT_GT(busy_model.step_seconds(four_flows, OverlapLevel::kDma),
            free_model.step_seconds(four_flows, OverlapLevel::kDma));
}

TEST(ModelTest, OffloadLevelsFormAMonotoneLattice) {
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  const StepShape shape = paper_shape();
  const auto at = [&](mach::OffloadSpec spec) {
    return mach::OffloadModel(p, spec)
        .step_seconds(shape, OverlapLevel::kDma);
  };
  const double none = at(mach::OffloadSpec::none());
  const double dma = at(mach::OffloadSpec::dma());
  const double duplex = at(mach::OffloadSpec::duplex_dma());
  const double rdma = at(mach::OffloadSpec::rdma());
  // More offload can only shorten the step (Fig. 3's (a) >= (b) >= (c)).
  EXPECT_GE(none, dma);
  EXPECT_GE(dma, duplex);
  EXPECT_GE(duplex, rdma);
  // No offload serializes everything: exactly the eq. (3) step.
  const mach::IdealOverlapModel ideal(p);
  EXPECT_DOUBLE_EQ(none, ideal.step_seconds(shape, OverlapLevel::kNone));
  EXPECT_GT(none, duplex);
}

TEST(ModelTest, RegistryKnowsEveryPublishedName) {
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  for (const std::string& name : mach::model_names()) {
    const std::shared_ptr<const mach::Model> m = mach::make_model(name, p);
    ASSERT_NE(m, nullptr) << name;
    // The params travel through whole: the model is a lens over them.
    EXPECT_DOUBLE_EQ(m->params().t_c, p.t_c) << name;
    EXPECT_FALSE(std::string(m->kind()).empty()) << name;
  }
  EXPECT_EQ(mach::make_model("no-such-model", p), nullptr);
  EXPECT_EQ(mach::make_model("", p), nullptr);
  // "ideal" is the only registry entry that bypasses model-aware paths.
  EXPECT_TRUE(mach::make_model("ideal", p)->ideal());
  EXPECT_FALSE(mach::make_model("interference", p)->ideal());
}
