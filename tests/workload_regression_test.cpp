// The workload refactor's regression contract, pinned the same way
// model_regression_test pinned the machine-model redesign: the uniform
// family is byte-identical to the pre-workload stack everywhere bytes
// escape — svc responses, fleet documents, stage logs, report JSON — for
// all three paper spaces, with or without the now-optional "kind" and
// "machine_model" fields.  Plus the new families' cross-layer wiring:
// DAG compiles over the svc wire and projective workloads under the
// fleet with byte-deterministic merges.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "tilo/core/problem.hpp"
#include "tilo/fleet/unit.hpp"
#include "tilo/loopnest/parse.hpp"
#include "tilo/machine/model.hpp"
#include "tilo/obs/report.hpp"
#include "tilo/pipeline/compiler.hpp"
#include "tilo/pipeline/serialize.hpp"
#include "tilo/svc/compile.hpp"
#include "tilo/svc/protocol.hpp"

using namespace tilo;
using util::i64;

namespace {

std::vector<core::Problem> paper_problems() {
  return {core::paper_problem_i(), core::paper_problem_ii(),
          core::paper_problem_iii()};
}

svc::CompileParams params_for(const core::Problem& p) {
  svc::CompileParams params;
  params.name = "regress";
  params.source = loop::to_source(p.nest);
  params.procs = p.procs;
  params.height = 64;
  params.simulate = true;
  return params;
}

const char* kTriSource =
    "FOR i = 0 TO 63\n"
    " FOR j = 0 TO 63\n"
    "  B(i, j) = 0.5 * (B(i-1, j) + B(i, j-1))\n"
    " ENDFOR\n"
    "ENDFOR\n";

/// A two-workload scenario (one per schedule kind) over `space`; `extra`
/// is spliced into each workload object ("" = the historical spelling).
std::string scenario_text(const std::string& source,
                          const std::string& extra,
                          const std::string& preamble) {
  pipeline::Json src = pipeline::Json::string(source);
  std::string text = R"({"tilo": "scenario", "version": 1, )" + preamble +
                     R"("workloads": [)";
  text += R"({"name": "a", "source": )" + src.dump() +
          R"(, "height": 64, "procs": [4, 4, 1])" + extra + "},";
  text += R"({"name": "b", "source": )" + src.dump() +
          R"(, "height": 32, "procs": [4, 4, 1], "schedule": "nonoverlap")" +
          extra + "}";
  text += "]}";
  return text;
}

/// Executes every unit of a scenario through the fleet path and returns
/// the result payloads.
std::vector<std::string> fleet_results(const std::string& scenario_text) {
  const pipeline::ScenarioFile scenario =
      pipeline::parse_scenario(scenario_text);
  std::vector<std::string> results;
  for (const fleet::WorkUnit& u : fleet::scenario_units(scenario))
    results.push_back(fleet::execute_unit(u.payload));
  return results;
}

}  // namespace

TEST(WorkloadRegressionTest, ExplicitUniformKindKeepsSvcBytesForAllSpaces) {
  for (const core::Problem& p : paper_problems()) {
    const svc::CompileParams implicit = params_for(p);
    svc::CompileParams explicit_kind = implicit;
    explicit_kind.workload_kind = "uniform";

    const svc::Response a =
        svc::execute_compile(pipeline::CompileOptions{}, implicit);
    const svc::Response b =
        svc::execute_compile(pipeline::CompileOptions{}, explicit_kind);
    ASSERT_EQ(a.status, svc::RespStatus::kOk) << a.error;
    ASSERT_EQ(b.status, svc::RespStatus::kOk) << b.error;
    // The exact serialized bytes, not approximate equality.
    EXPECT_EQ(a.result, b.result) << p.nest.name();

    // The wire request with no kind keeps its historical problem_key
    // bytes (cache keys survive the refactor); the explicit spelling is
    // a different key for the same bytes.
    EXPECT_EQ(svc::problem_key(implicit),
              svc::problem_key(svc::workload_from_json(
                  svc::workload_to_json(implicit))));
    EXPECT_NE(svc::problem_key(implicit), svc::problem_key(explicit_kind));
  }
}

TEST(WorkloadRegressionTest, UnknownWorkloadKindAnswersBadRequest) {
  svc::CompileParams params = params_for(core::paper_problem_i());
  params.workload_kind = "hypercube";
  const svc::Response resp =
      svc::execute_compile(pipeline::CompileOptions{}, params);
  EXPECT_EQ(resp.status, svc::RespStatus::kBadRequest);
  EXPECT_NE(resp.error.find("hypercube"), std::string::npos) << resp.error;
  EXPECT_NE(resp.error.find("projective"), std::string::npos) << resp.error;
}

TEST(WorkloadRegressionTest, FleetScenarioDocsWithExplicitKindAreIdentical) {
  for (const core::Problem& p : paper_problems()) {
    const std::string source = loop::to_source(p.nest);
    const std::vector<std::string> implicit =
        fleet_results(scenario_text(source, "", ""));
    const std::vector<std::string> explicit_kind =
        fleet_results(scenario_text(source, R"(, "kind": "uniform")", ""));
    ASSERT_EQ(implicit.size(), explicit_kind.size());
    for (std::size_t i = 0; i < implicit.size(); ++i)
      EXPECT_EQ(implicit[i], explicit_kind[i]) << p.nest.name();
  }
}

TEST(WorkloadRegressionTest, OmittedKindAndModelEqualExplicitDefaults) {
  // A scenario spelling out the defaults — "kind": "uniform" on every
  // workload and the ideal model as an explicit "machine_model" envelope
  // — compiles to the same bytes as the file that omits both.
  const mach::IdealOverlapModel ideal(mach::MachineParams::paper_cluster());
  const std::string model_preamble =
      "\"machine_model\": " + pipeline::model_to_json(ideal).dump() + ", ";
  for (const core::Problem& p : paper_problems()) {
    const std::string source = loop::to_source(p.nest);
    const std::vector<std::string> implicit =
        fleet_results(scenario_text(source, "", ""));
    const std::vector<std::string> explicit_defaults = fleet_results(
        scenario_text(source, R"(, "kind": "uniform")", model_preamble));
    ASSERT_EQ(implicit.size(), explicit_defaults.size());
    for (std::size_t i = 0; i < implicit.size(); ++i)
      EXPECT_EQ(implicit[i], explicit_defaults[i]) << p.nest.name();
  }
}

TEST(WorkloadRegressionTest, UniformCompileBuildsNoWorkloadArtifact) {
  // The historical Frontend path, bit for bit: no workload artifact, no
  // DAG plan, and a stage log without any workload-era vocabulary.
  for (const core::Problem& p : paper_problems()) {
    pipeline::CompileOptions opts;
    opts.procs = p.procs;
    opts.height = 64;
    const pipeline::ArtifactStore out =
        pipeline::Compiler(opts).compile_source("plain",
                                                loop::to_source(p.nest));
    EXPECT_FALSE(out.has_workload());
    EXPECT_FALSE(out.has_dag_plan());
    std::ostringstream os;
    pipeline::write_stage_log(os, out);
    EXPECT_EQ(os.str().find("ALAP"), std::string::npos);
    EXPECT_EQ(os.str().find("projective"), std::string::npos);
  }
}

TEST(WorkloadRegressionTest, ReportJsonOmitsAlapFieldsForNestRuns) {
  const core::Problem p = core::paper_problem_i();
  obs::ReportSink sink;
  pipeline::CompileOptions opts;
  opts.procs = p.procs;
  opts.height = 64;
  opts.sink = &sink;
  pipeline::Compiler(opts).compile_source("plain", loop::to_source(p.nest));
  std::ostringstream json;
  sink.report().write_json(json);
  EXPECT_EQ(json.str().find("alap"), std::string::npos) << json.str();
  std::ostringstream table;
  sink.report().write_table(table);
  EXPECT_EQ(table.str().find("ALAP"), std::string::npos) << table.str();
}

TEST(WorkloadRegressionTest, DagCompileOverTheSvcWireReportsTheBound) {
  svc::CompileParams params;
  params.name = "chol";
  params.source = "cholesky nt=6 b=32";
  params.workload_kind = "dag";
  params.auto_procs = 4;
  params.simulate = true;
  // Through the wire codec: kind and spec survive the round trip.
  const svc::CompileParams decoded =
      svc::workload_from_json(svc::workload_to_json(params));
  EXPECT_EQ(decoded.workload_kind, "dag");
  const svc::Response resp =
      svc::execute_compile(pipeline::CompileOptions{}, decoded);
  ASSERT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
  const pipeline::Json r = pipeline::Json::parse(resp.result);
  EXPECT_EQ(r.at("kind").as_string("kind"), "dag");
  EXPECT_EQ(r.at("tasks").as_integer("tasks"), 56);
  EXPECT_EQ(r.at("ranks").as_integer("ranks"), 4);
  const double bound =
      r.at("alap_lower_bound_seconds").as_number("alap_lower_bound_seconds");
  const double achieved =
      r.at("simulated_seconds").as_number("simulated_seconds");
  EXPECT_GT(bound, 0.0);
  EXPECT_GE(achieved, bound);
  EXPECT_GE(r.at("bound_ratio").as_number("bound_ratio"), 1.0);
}

TEST(WorkloadRegressionTest, ProjectiveFleetMergeIsByteDeterministic) {
  pipeline::Json src = pipeline::Json::string(kTriSource);
  const std::string scenario =
      R"({"tilo": "scenario", "version": 1, "workloads": [)"
      R"({"name": "tri", "source": )" + src.dump() +
      R"(, "kind": "projective", "constraints": ["d1 <= d0"],)"
      R"( "procs": [4, 1], "height": 16}]})";
  const std::vector<std::string> first = fleet_results(scenario);
  const std::vector<std::string> second = fleet_results(scenario);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first, second);  // byte-deterministic merge input

  // And the fleet result is the same bytes the service computes directly.
  svc::CompileParams params;
  params.name = "tri";
  params.source = kTriSource;
  params.workload_kind = "projective";
  params.constraints = {"d1 <= d0"};
  params.procs = lat::Vec({4, 1});
  params.height = 16;
  params.simulate = true;
  const svc::Response direct =
      svc::execute_compile(pipeline::CompileOptions{}, params);
  ASSERT_EQ(direct.status, svc::RespStatus::kOk) << direct.error;
  EXPECT_EQ(first[0], direct.result);
  const pipeline::Json r = pipeline::Json::parse(direct.result);
  EXPECT_EQ(r.at("kind").as_string("kind"), "projective");
}
