// Tests for core::recommend_plan — the one-call planner that picks the
// processor-grid factorization, the tile height and the schedule.
#include <gtest/gtest.h>

#include "tilo/core/predict.hpp"
#include "tilo/core/recommend.hpp"
#include "tilo/exec/run.hpp"
#include "tilo/loopnest/workloads.hpp"

using namespace tilo;
using core::Recommendation;
using lat::Vec;
using loop::LoopNest;
using sched::ScheduleKind;
using util::i64;

TEST(RecommendTest, SymmetricCrossSectionGetsSquareGrid) {
  const LoopNest nest = loop::paper_space_i();  // 16 x 16 x 16384
  const Recommendation r = core::recommend_plan(
      nest, mach::MachineParams::paper_cluster(), 16);
  EXPECT_EQ(r.problem.procs, (Vec{4, 4, 1}));  // the paper's own grid
  EXPECT_EQ(r.plan.mapping.num_ranks(), 16);
  EXPECT_GT(r.V, 16);
  EXPECT_GT(r.predicted_seconds, 0.0);
}

TEST(RecommendTest, AnisotropicDomainGetsElongatedGrid) {
  // 64 x 4 x 4096: only 4 rows in dimension 1 — a 4x4 grid would waste
  // processors on tiny tiles; the planner should put more along dim 0.
  const LoopNest nest = loop::stencil3d_nest(64, 4, 4096);
  const Recommendation r = core::recommend_plan(
      nest, mach::MachineParams::paper_cluster(), 16);
  EXPECT_GE(r.problem.procs[0], 8);
  EXPECT_EQ(r.problem.procs[0] * r.problem.procs[1], 16);
}

TEST(RecommendTest, ChoiceMinimizesPredictionOverAllGrids) {
  const LoopNest nest = loop::stencil3d_nest(16, 16, 2048);
  const mach::MachineParams m = mach::MachineParams::paper_cluster();
  const Recommendation best = core::recommend_plan(nest, m, 16);
  // Every explicit alternative must predict no better.  (16x1 and 1x16
  // would need unit tile sides, which containment forbids — the planner's
  // caps exclude them, so the comparison set does too.)
  for (i64 p0 : {2, 4, 8}) {
    const i64 p1 = 16 / p0;
    core::Problem alt{nest, m, Vec{p0, p1, 1}};
    const auto opt = core::analytic_optimal_height_overlap(alt);
    const double predicted = core::predict_completion(
        alt.plan(opt.V, ScheduleKind::kOverlap), m);
    EXPECT_LE(best.predicted_seconds, predicted + 1e-12)
        << "grid " << p0 << "x" << p1;
  }
}

TEST(RecommendTest, RecommendedPlanRunsAndValidates) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 256);
  const mach::MachineParams m = mach::MachineParams::paper_cluster();
  const Recommendation r = core::recommend_plan(nest, m, 4);
  const double simulated = exec::run_plan(nest, r.plan, m).seconds;
  EXPECT_NEAR(simulated, r.predicted_seconds, 0.25 * r.predicted_seconds);
  EXPECT_DOUBLE_EQ(exec::run_and_validate(nest, r.plan, m), 0.0);
}

TEST(RecommendTest, NonOverlapKindSupported) {
  const LoopNest nest = loop::stencil3d_nest(16, 16, 1024);
  const Recommendation over = core::recommend_plan(
      nest, mach::MachineParams::paper_cluster(), 16,
      ScheduleKind::kOverlap);
  const Recommendation non = core::recommend_plan(
      nest, mach::MachineParams::paper_cluster(), 16,
      ScheduleKind::kNonOverlap);
  EXPECT_LT(over.predicted_seconds, non.predicted_seconds);
}

TEST(RecommendTest, ImpossibleBudgetThrows) {
  // 8 x 8 cross-section cannot host 1024 processors.
  const LoopNest nest = loop::stencil3d_nest(8, 8, 64);
  EXPECT_THROW(core::recommend_plan(
                   nest, mach::MachineParams::paper_cluster(), 1024),
               util::Error);
}

TEST(RecommendTest, NegativeDepsNeedSkewFirst) {
  const LoopNest nest("w", lat::Box::from_extents(Vec{32, 32}),
                      loop::DependenceSet({Vec{1, -1}, Vec{1, 0}}));
  EXPECT_THROW(core::recommend_plan(
                   nest, mach::MachineParams::paper_cluster(), 4),
               util::Error);
}
