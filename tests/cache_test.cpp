// Tests for the optional cache model: tiles spilling the cache pay a
// compute penalty, the simulated sweep's optimum shifts toward smaller
// tiles, and the disabled model reproduces the paper's constant-t_c world.
#include <gtest/gtest.h>

#include "tilo/core/predict.hpp"
#include "tilo/core/problem.hpp"
#include "tilo/core/sweep.hpp"
#include "tilo/exec/run.hpp"
#include "tilo/loopnest/workloads.hpp"

using namespace tilo;
using lat::Vec;
using loop::LoopNest;
using mach::CacheModel;
using sched::ScheduleKind;
using util::i64;

TEST(CacheModelTest, FactorSaturatesSmoothly) {
  CacheModel cache{1024, 2.0};
  EXPECT_DOUBLE_EQ(cache.factor(0), 1.0);
  EXPECT_DOUBLE_EQ(cache.factor(1024), 1.0);
  EXPECT_DOUBLE_EQ(cache.factor(2048), 1.0 + 2.0 * 0.5);
  EXPECT_NEAR(cache.factor(1 << 20), 3.0, 0.01);  // asymptote 1 + penalty
  // Disabled model never penalizes.
  EXPECT_DOUBLE_EQ(CacheModel{}.factor(1 << 30), 1.0);
}

TEST(CacheModelTest, DisabledModelMatchesPaperDefaults) {
  // The calibrated cluster keeps the paper's constant-t_c assumption.
  EXPECT_FALSE(mach::MachineParams::paper_cluster().cache.enabled());
}

TEST(CacheModelTest, SpillingTilesSlowTheSimulationDown) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 256);
  const exec::TilePlan plan = exec::make_plan(
      nest, tile::RectTiling(Vec{4, 4, 64}), ScheduleKind::kOverlap);
  mach::MachineParams base = mach::MachineParams::paper_cluster();
  mach::MachineParams small_cache = base;
  // 4x4x64 floats = 4 KiB tiles; a 1 KiB cache makes them spill hard.
  small_cache.cache = CacheModel{1024, 4.0};
  const double t_base = exec::run_plan(nest, plan, base).seconds;
  const double t_cache = exec::run_plan(nest, plan, small_cache).seconds;
  EXPECT_GT(t_cache, 1.5 * t_base);
}

TEST(CacheModelTest, SimulatedPenaltyRatioMatchesTheModelFactor) {
  // The cache model's claim is a per-tile compute multiplier; compare the
  // with/without simulation ratio against the analytic factor on a
  // compute-bound configuration (ratios cancel the border effects that
  // make absolute completion-time comparisons loose on short pipelines).
  core::Problem p{loop::stencil3d_nest(16, 16, 2048),
                  mach::MachineParams::paper_cluster(), Vec{4, 4, 1}};
  const exec::TilePlan plan = p.plan(512, ScheduleKind::kOverlap);
  const double t_plain = exec::run_plan(p.nest, plan, p.machine).seconds;
  p.machine.cache = CacheModel{8 * 1024, 3.0};
  const double t_cache = exec::run_plan(p.nest, plan, p.machine).seconds;
  const mach::StepShape shape = core::steady_step_shape(plan, p.machine);
  const double factor = p.machine.cache.factor(shape.working_set_bytes);
  ASSERT_GT(factor, 2.0);  // the configuration really spills
  // Only the compute share of the critical path is multiplied, so the
  // end-to-end ratio is sandwiched between 1 and the per-tile factor.
  EXPECT_GT(t_cache / t_plain, 1.8);
  EXPECT_LE(t_cache / t_plain, factor);
}

TEST(CacheModelTest, OptimalTileHeightShrinksUnderASmallCache) {
  // The classic effect: the cache bends the right side of the U-curve
  // upward, pulling V_optimal toward smaller tiles.
  core::Problem p{loop::stencil3d_nest(16, 16, 4096),
                  mach::MachineParams::paper_cluster(), Vec{4, 4, 1}};
  const core::Autotune no_cache = core::autotune_tile_height(
      p, ScheduleKind::kOverlap, 16, p.max_tile_height() / 4);
  // 2 KiB capacity: the cache-less optimum (~10 KiB tiles) spills hard.
  p.machine.cache = CacheModel{2 * 1024, 6.0};
  const core::Autotune with_cache = core::autotune_tile_height(
      p, ScheduleKind::kOverlap, 16, p.max_tile_height() / 4);
  EXPECT_LT(with_cache.V_opt, no_cache.V_opt);
  EXPECT_GT(with_cache.t_opt, no_cache.t_opt);
}

TEST(CacheModelTest, FunctionalResultsUnaffectedByTiming) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 24);
  const exec::TilePlan plan = exec::make_plan(
      nest, tile::RectTiling(Vec{4, 4, 6}), ScheduleKind::kOverlap);
  mach::MachineParams m = mach::MachineParams::paper_cluster();
  m.cache = CacheModel{512, 5.0};
  EXPECT_DOUBLE_EQ(exec::run_and_validate(nest, plan, m), 0.0);
}
