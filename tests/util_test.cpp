// Unit tests for tilo::util — exact integer helpers, deterministic RNG,
// table rendering and error plumbing.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "tilo/util/csv.hpp"
#include "tilo/util/error.hpp"
#include "tilo/util/math.hpp"
#include "tilo/util/rng.hpp"

namespace tu = tilo::util;
using tu::i64;

TEST(MathTest, FloorDivMatchesMathematicalFloor) {
  EXPECT_EQ(tu::floor_div(7, 2), 3);
  EXPECT_EQ(tu::floor_div(-7, 2), -4);
  EXPECT_EQ(tu::floor_div(7, -2), -4);
  EXPECT_EQ(tu::floor_div(-7, -2), 3);
  EXPECT_EQ(tu::floor_div(6, 3), 2);
  EXPECT_EQ(tu::floor_div(-6, 3), -2);
  EXPECT_EQ(tu::floor_div(0, 5), 0);
}

TEST(MathTest, CeilDivMatchesMathematicalCeil) {
  EXPECT_EQ(tu::ceil_div(7, 2), 4);
  EXPECT_EQ(tu::ceil_div(-7, 2), -3);
  EXPECT_EQ(tu::ceil_div(7, -2), -3);
  EXPECT_EQ(tu::ceil_div(-7, -2), 4);
  EXPECT_EQ(tu::ceil_div(6, 3), 2);
}

TEST(MathTest, FloorModAlwaysNonnegativeForPositiveModulus) {
  EXPECT_EQ(tu::floor_mod(7, 3), 1);
  EXPECT_EQ(tu::floor_mod(-7, 3), 2);
  EXPECT_EQ(tu::floor_mod(-1, 10), 9);
  EXPECT_EQ(tu::floor_mod(0, 10), 0);
}

TEST(MathTest, FloorDivIdentity) {
  // a == floor_div(a, b) * b + floor_mod(a, b) for many combinations.
  for (i64 a = -20; a <= 20; ++a)
    for (i64 b : {-7, -3, -1, 1, 2, 5, 13})
      EXPECT_EQ(a, tu::floor_div(a, b) * b + tu::floor_mod(a, b))
          << "a=" << a << " b=" << b;
}

TEST(MathTest, DivisionByZeroThrows) {
  EXPECT_THROW(tu::floor_div(1, 0), tu::Error);
  EXPECT_THROW(tu::ceil_div(1, 0), tu::Error);
}

TEST(MathTest, CheckedAddDetectsOverflow) {
  const i64 big = std::numeric_limits<i64>::max();
  EXPECT_EQ(tu::checked_add(big - 1, 1), big);
  EXPECT_THROW(tu::checked_add(big, 1), tu::Error);
  EXPECT_THROW(tu::checked_sub(std::numeric_limits<i64>::min(), 1),
               tu::Error);
}

TEST(MathTest, CheckedMulDetectsOverflow) {
  EXPECT_EQ(tu::checked_mul(1 << 20, 1 << 20), i64{1} << 40);
  EXPECT_THROW(tu::checked_mul(i64{1} << 40, i64{1} << 40), tu::Error);
}

TEST(MathTest, LcmBasics) {
  EXPECT_EQ(tu::lcm(4, 6), 12);
  EXPECT_EQ(tu::lcm(0, 5), 0);
  EXPECT_EQ(tu::lcm(-4, 6), 12);
}

TEST(RngTest, DeterministicForFixedSeed) {
  tu::Rng a(42);
  tu::Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  tu::Rng a(1);
  tu::Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformStaysInRange) {
  tu::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const i64 v = rng.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformCoversSmallRange) {
  tu::Rng rng(11);
  bool seen[3] = {false, false, false};
  for (int i = 0; i < 200; ++i) seen[rng.uniform(0, 2)] = true;
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  tu::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BadBoundsThrow) {
  tu::Rng rng(1);
  EXPECT_THROW(rng.uniform(3, 2), tu::Error);
}

TEST(TableTest, TextRenderingAligns) {
  tu::Table t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.write_text(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  tu::Table t;
  t.set_header({"a", "b"});
  t.add_row({"x,y", "say \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows) {
  tu::Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), tu::Error);
}

TEST(FormatTest, SecondsPicksSensibleUnit) {
  EXPECT_NE(tu::fmt_seconds(1.5).find(" s"), std::string::npos);
  EXPECT_NE(tu::fmt_seconds(0.0025).find("ms"), std::string::npos);
  EXPECT_NE(tu::fmt_seconds(2.5e-6).find("us"), std::string::npos);
}

TEST(ErrorTest, RequireMessageContainsContext) {
  try {
    TILO_REQUIRE(false, "the answer is ", 42);
    FAIL() << "expected throw";
  } catch (const tu::Error& e) {
    EXPECT_NE(std::string(e.what()).find("the answer is 42"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
  }
}

TEST(ErrorTest, AssertMessageSaysInvariant) {
  try {
    TILO_ASSERT(1 == 2, "broken");
    FAIL() << "expected throw";
  } catch (const tu::Error& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}
