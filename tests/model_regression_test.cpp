// The machine-model redesign's regression contract, end to end: running
// any pipeline under an explicit IdealOverlapModel produces byte-identical
// results to the historical params-only path (problem.model == nullptr) —
// sweeps, pruned selections, svc responses, fleet documents.  Plus the
// direction property: imperfect overlap (beta < 1) never shrinks the
// tuned V_optimal.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "tilo/core/analytic.hpp"
#include "tilo/core/sweep.hpp"
#include "tilo/exec/run.hpp"
#include "tilo/fleet/unit.hpp"
#include "tilo/machine/model.hpp"
#include "tilo/pipeline/compiler.hpp"
#include "tilo/svc/compile.hpp"

using namespace tilo;
using util::i64;

namespace {

/// The paper's space i with an explicit ideal model attached — the
/// "redesigned" spelling of the same problem.
core::Problem ideal_problem() {
  core::Problem p = core::paper_problem_i();
  p.model = std::make_shared<mach::IdealOverlapModel>(p.machine);
  return p;
}

void expect_points_identical(const std::vector<core::SweepPoint>& a,
                             const std::vector<core::SweepPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].V, b[i].V);
    EXPECT_EQ(a[i].g, b[i].g);
    // Exact == on doubles: byte-identical, not approximately equal.
    EXPECT_EQ(a[i].t_overlap, b[i].t_overlap) << "V = " << a[i].V;
    EXPECT_EQ(a[i].t_nonoverlap, b[i].t_nonoverlap) << "V = " << a[i].V;
    EXPECT_EQ(a[i].predicted_overlap, b[i].predicted_overlap);
    EXPECT_EQ(a[i].predicted_nonoverlap, b[i].predicted_nonoverlap);
    EXPECT_EQ(a[i].predicted_cpu_bound, b[i].predicted_cpu_bound);
    EXPECT_EQ(a[i].events, b[i].events);
  }
}

}  // namespace

TEST(ModelRegressionTest, RunPlanForwardsShimBitIdentically) {
  const core::Problem p = core::paper_problem_i();
  pipeline::CompileOptions opts;
  opts.machine = p.machine;
  opts.procs = p.procs;
  opts.height = 64;
  opts.simulate = false;
  const pipeline::ArtifactStore out =
      pipeline::Compiler(opts).compile_nest(p.nest);
  const exec::TilePlan& plan = *out.plan().plan;

  const exec::RunResult via_params = exec::run_plan(p.nest, plan, p.machine);
  const exec::RunResult via_model = exec::run_plan(
      p.nest, plan, std::make_shared<mach::IdealOverlapModel>(p.machine));
  EXPECT_EQ(via_model.seconds, via_params.seconds);
  EXPECT_EQ(via_model.completion, via_params.completion);
  EXPECT_EQ(via_model.messages, via_params.messages);
  EXPECT_EQ(via_model.bytes, via_params.bytes);
  EXPECT_EQ(via_model.events, via_params.events);
}

TEST(ModelRegressionTest, SweepUnderIdealModelIsByteIdentical) {
  const core::Problem null_model = core::paper_problem_i();
  const core::Problem with_model = ideal_problem();
  const std::vector<i64> grid = core::height_grid(16, 1024, 2.0);
  expect_points_identical(core::sweep_tile_height(with_model, grid),
                          core::sweep_tile_height(null_model, grid));
}

TEST(ModelRegressionTest, PrunedSelectionUnderIdealModelIsByteIdentical) {
  const core::Problem null_model = core::paper_problem_i();
  const core::Problem with_model = ideal_problem();
  const std::vector<i64> grid = core::height_grid(16, 1024, 2.0);
  const core::SweepSelection a = core::sweep_select(with_model, grid);
  const core::SweepSelection b = core::sweep_select(null_model, grid);
  expect_points_identical(a.points, b.points);
  EXPECT_EQ(a.simulated_overlap, b.simulated_overlap);
  EXPECT_EQ(a.simulated_nonoverlap, b.simulated_nonoverlap);
  EXPECT_EQ(a.best_overlap.V, b.best_overlap.V);
  EXPECT_EQ(a.best_overlap.t, b.best_overlap.t);
  EXPECT_EQ(a.best_nonoverlap.V, b.best_nonoverlap.V);
  EXPECT_EQ(a.best_nonoverlap.t, b.best_nonoverlap.t);
  EXPECT_EQ(a.V_analytic_overlap, b.V_analytic_overlap);
  EXPECT_EQ(a.V_analytic_nonoverlap, b.V_analytic_nonoverlap);
  EXPECT_EQ(a.simulated_runs, b.simulated_runs);
}

TEST(ModelRegressionTest, AnalyticOptimumUnderIdealModelIsByteIdentical) {
  const core::Problem null_model = core::paper_problem_i();
  const core::Problem with_model = ideal_problem();
  const core::AnalyticOptimum a =
      core::analytic_optimal_height_overlap(with_model);
  const core::AnalyticOptimum b =
      core::analytic_optimal_height_overlap(null_model);
  EXPECT_EQ(a.V, b.V);
  EXPECT_EQ(a.V_continuous, b.V_continuous);
  EXPECT_EQ(a.t_predicted, b.t_predicted);
  EXPECT_EQ(a.cpu_bound, b.cpu_bound);
}

TEST(ModelRegressionTest, SvcResponseUnderIdealModelIsByteIdentical) {
  const char* source =
      "FOR i = 0 TO 15\n FOR j = 0 TO 255\n"
      "  B(i, j) = 0.5 * (B(i-1, j) + B(i, j-1))\n ENDFOR\nENDFOR\n";
  svc::CompileParams params;
  params.name = "regress";
  params.source = source;
  params.height = 32;
  params.simulate = true;

  pipeline::CompileOptions null_base;
  pipeline::CompileOptions model_base;
  model_base.model = std::make_shared<mach::IdealOverlapModel>(
      model_base.machine);

  const svc::Response a = svc::execute_compile(model_base, params);
  const svc::Response b = svc::execute_compile(null_base, params);
  ASSERT_EQ(a.status, svc::RespStatus::kOk) << a.error;
  ASSERT_EQ(b.status, svc::RespStatus::kOk) << b.error;
  EXPECT_EQ(a.result, b.result);  // the exact serialized bytes

  // Requesting the model by name over the wire keeps the bytes too.
  svc::CompileParams named = params;
  named.model = "ideal";
  const svc::Response c = svc::execute_compile(null_base, named);
  ASSERT_EQ(c.status, svc::RespStatus::kOk) << c.error;
  EXPECT_EQ(c.result, b.result);
}

TEST(ModelRegressionTest, UnknownModelNameAnswersBadRequest) {
  svc::CompileParams params;
  params.name = "bad";
  params.source = "FOR i = 0 TO 7\n A(i) = A(i-1)\nENDFOR\n";
  params.model = "warp-drive";
  const svc::Response resp =
      svc::execute_compile(pipeline::CompileOptions{}, params);
  EXPECT_EQ(resp.status, svc::RespStatus::kBadRequest);
  EXPECT_NE(resp.error.find("warp-drive"), std::string::npos) << resp.error;
  EXPECT_NE(resp.error.find("ideal"), std::string::npos) << resp.error;
}

TEST(ModelRegressionTest, FleetSweepDocumentUnderIdealModelIsByteIdentical) {
  const core::Problem null_model = core::paper_problem_i();
  const core::Problem with_model = ideal_problem();
  const std::vector<i64> grid = core::height_grid(32, 512, 2.0);

  const auto document = [&](const core::Problem& p) {
    std::vector<std::string> results;
    for (const fleet::WorkUnit& u : fleet::sweep_units(p, grid))
      results.push_back(fleet::execute_unit(u.payload));
    return fleet::sweep_points_document(results);
  };
  const std::string a = document(with_model);
  const std::string b = document(null_model);
  EXPECT_EQ(a, b);

  // Model-carrying unit payloads do differ (they embed the model
  // envelope); only the computed results must not.
  EXPECT_NE(fleet::sweep_units(with_model, grid)[0].payload,
            fleet::sweep_units(null_model, grid)[0].payload);
}

TEST(ModelRegressionTest, BetaBelowOneShiftsVOptimalUpward) {
  const core::Problem ideal = ideal_problem();
  core::Problem taxed = core::paper_problem_i();
  mach::InterferenceConfig c;
  c.beta_kernel = 0.5;
  c.beta_wire = 0.5;
  taxed.model = std::make_shared<mach::InterferenceModel>(taxed.machine, c);

  const core::AnalyticOptimum v_ideal =
      core::analytic_optimal_height_overlap(ideal);
  const core::AnalyticOptimum v_taxed =
      core::analytic_optimal_height_overlap(taxed);
  // Imperfect overlap taxes every message onto the CPU, so the optimum
  // moves toward taller tiles (fewer messages) — never shorter.
  EXPECT_GE(v_taxed.V, v_ideal.V);
  // And the taxed machine is genuinely slower at its own optimum.
  EXPECT_GT(v_taxed.t_predicted, v_ideal.t_predicted);

  // The direction holds on the non-overlapping branch too (the tax is on
  // overlap, so the non-overlap optimum must not move at all).
  const core::AnalyticOptimum n_ideal =
      core::analytic_optimal_height_nonoverlap(ideal);
  const core::AnalyticOptimum n_taxed =
      core::analytic_optimal_height_nonoverlap(taxed);
  EXPECT_GE(n_taxed.V, 1);
  EXPECT_GT(n_taxed.t_predicted, 0.0);
  EXPECT_GE(n_ideal.V, 1);
}
