// Analytic pre-pruning property suites (DESIGN.md §13): the closed-form
// model (eqs. 3-5) ranks the V grid, only the contending region around
// its argmin is simulated, and the selection must still be bit-identical
// to simulating everything.  Checked on the three paper spaces, on
// randomized instances, and — negatively — with a slack too tight to
// contain the true optimum.
#include <gtest/gtest.h>

#include <cstring>

#include "tilo/core/analytic.hpp"
#include "tilo/core/problem.hpp"
#include "tilo/core/sweep.hpp"
#include "tilo/loopnest/workloads.hpp"
#include "tilo/util/error.hpp"
#include "tilo/util/rng.hpp"

using namespace tilo;
using core::Problem;
using core::SweepOptions;
using core::SweepSelection;
using core::SweepVerdict;
using lat::Vec;
using util::i64;

namespace {

Problem paper_space(int index) {
  switch (index) {
    case 0: return core::paper_problem_i();
    case 1: return core::paper_problem_ii();
    default: return core::paper_problem_iii();
  }
}

std::vector<i64> grid_for(const Problem& problem) {
  return core::height_grid(4, problem.max_tile_height() / 2, 1.3);
}

bool verdict_bits_equal(const SweepVerdict& a, const SweepVerdict& b) {
  return std::memcmp(&a, &b, sizeof(SweepVerdict)) == 0;
}

void expect_pruned_matches_exhaustive(const Problem& problem,
                                      const std::vector<i64>& heights,
                                      const SweepOptions& opts) {
  SweepOptions pruned_opts = opts;
  pruned_opts.exhaustive = false;
  const SweepSelection pruned =
      core::sweep_select(problem, heights, pruned_opts);
  SweepOptions ex_opts = opts;
  ex_opts.exhaustive = true;
  const SweepSelection full = core::sweep_select(problem, heights, ex_opts);

  EXPECT_TRUE(verdict_bits_equal(pruned.best_overlap, full.best_overlap))
      << "overlap verdict diverged: pruned V=" << pruned.best_overlap.V
      << " exhaustive V=" << full.best_overlap.V;
  EXPECT_TRUE(
      verdict_bits_equal(pruned.best_nonoverlap, full.best_nonoverlap))
      << "non-overlap verdict diverged: pruned V="
      << pruned.best_nonoverlap.V
      << " exhaustive V=" << full.best_nonoverlap.V;
  // Pruning must actually prune (the grids here are wide enough that the
  // contending region is a strict subset) and every simulated point must
  // carry the simulator's bytes, not the model's.
  EXPECT_LT(pruned.simulated_runs, full.simulated_runs);
  EXPECT_EQ(full.simulated_runs, full.total_runs);
  for (std::size_t i = 0; i < heights.size(); ++i) {
    if (!pruned.simulated_overlap[i]) continue;
    EXPECT_EQ(pruned.points[i].t_overlap, full.points[i].t_overlap)
        << "simulated overlap time differs at V=" << heights[i];
    EXPECT_EQ(pruned.points[i].g, full.points[i].g);
  }
}

}  // namespace

class PruneSelectPaperSpaces : public ::testing::TestWithParam<int> {};

/// The certified default: on each paper experiment space the pruned
/// selection is bit-identical to the exhaustive one at kDefaultPruneSlack.
TEST_P(PruneSelectPaperSpaces, DefaultSlackMatchesExhaustive) {
  const Problem problem = paper_space(GetParam());
  expect_pruned_matches_exhaustive(problem, grid_for(problem), {});
}

/// verify_pruned_selection re-runs exhaustively and certifies the match;
/// at the default slack it must return (not throw) on every paper space.
TEST_P(PruneSelectPaperSpaces, VerifierCertifiesDefaultSlack) {
  const Problem problem = paper_space(GetParam());
  const SweepSelection sel =
      core::verify_pruned_selection(problem, grid_for(problem));
  EXPECT_GT(sel.best_overlap.V, 0);
  EXPECT_GT(sel.best_nonoverlap.V, 0);
  EXPECT_LT(sel.simulated_runs, sel.total_runs);
}

/// The analytic argmin must itself survive pruning: the model can never
/// rule out its own minimizer, whatever the slack.
TEST_P(PruneSelectPaperSpaces, AnalyticArgminAlwaysContends) {
  const Problem problem = paper_space(GetParam());
  const std::vector<i64> heights = grid_for(problem);
  SweepOptions opts;
  opts.prune_slack = 1.0;  // tightest legal region
  const SweepSelection sel = core::sweep_select(problem, heights, opts);
  bool overlap_argmin_simulated = false;
  bool nonoverlap_argmin_simulated = false;
  for (std::size_t i = 0; i < heights.size(); ++i) {
    if (heights[i] == sel.V_analytic_overlap)
      overlap_argmin_simulated = sel.simulated_overlap[i];
    if (heights[i] == sel.V_analytic_nonoverlap)
      nonoverlap_argmin_simulated = sel.simulated_nonoverlap[i];
  }
  EXPECT_TRUE(overlap_argmin_simulated);
  EXPECT_TRUE(nonoverlap_argmin_simulated);
}

INSTANTIATE_TEST_SUITE_P(AllSpaces, PruneSelectPaperSpaces,
                         ::testing::Values(0, 1, 2));

/// The negative property: slack 1.0 keeps only the model's own argmin
/// neighborhood, which on space (i) excludes the simulated optimum
/// (V=227 vs the analytic argmin 181) — the verifier must detect the
/// divergence and throw instead of silently returning the wrong tile.
TEST(PruneSelectTest, VerifierDetectsOverTightSlack) {
  const Problem problem = core::paper_problem_i();
  SweepOptions opts;
  opts.prune_slack = 1.0;
  EXPECT_THROW(
      core::verify_pruned_selection(problem, grid_for(problem), opts),
      util::Error);
}

/// Slack below 1 can never certify anything (the region could even lose
/// the analytic argmin): rejected up front.
TEST(PruneSelectTest, SlackBelowOneIsRejected) {
  const Problem problem = core::paper_problem_iii();
  SweepOptions opts;
  opts.prune_slack = 0.5;
  EXPECT_THROW(core::sweep_select(problem, grid_for(problem), opts),
               util::Error);
}

/// Exhaustive mode is the escape hatch: every point simulated, bytes
/// identical to the plain sweep.
TEST(PruneSelectTest, ExhaustiveModeMatchesPlainSweep) {
  const Problem problem = core::paper_problem_iii();
  const std::vector<i64> heights = grid_for(problem);
  SweepOptions opts;
  opts.exhaustive = true;
  const SweepSelection sel = core::sweep_select(problem, heights, opts);
  const std::vector<core::SweepPoint> plain =
      core::sweep_tile_height(problem, heights);
  ASSERT_EQ(sel.points.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(sel.points[i].V, plain[i].V);
    EXPECT_EQ(sel.points[i].t_overlap, plain[i].t_overlap);
    EXPECT_EQ(sel.points[i].t_nonoverlap, plain[i].t_nonoverlap);
    EXPECT_EQ(sel.points[i].events, plain[i].events);
  }
}

/// Randomized instances: the contending region certified by the verifier
/// (generous slack — these nests are far from the calibrated paper
/// machines) still yields bit-identical selections.
TEST(PruneSelectTest, RandomInstancesMatchExhaustive) {
  util::Rng rng(20260808);
  int ran = 0;
  for (int trial = 0; trial < 8; ++trial) {
    loop::RandomNestOptions nopts;
    nopts.dims = 2;
    nopts.num_deps = static_cast<std::size_t>(rng.uniform(1, 3));
    nopts.max_dep_component = 2;
    nopts.min_extent = 64;
    nopts.max_extent = 160;
    nopts.nonneg_deps = true;
    const loop::LoopNest nest = loop::random_nest(rng, nopts);

    mach::MachineParams machine = mach::MachineParams::paper_cluster();
    const Problem probe{nest, machine, Vec(nest.dims(), 1)};
    Vec procs(nest.dims(), 1);
    for (std::size_t d = 0; d < nest.dims(); ++d)
      if (d != probe.mapped_dim()) procs[d] = rng.uniform(1, 4);
    const Problem problem{nest, machine, procs};
    if (problem.max_tile_height() < 8) continue;

    // Legal heights only: every tile side must exceed the largest
    // dependence component in its dimension.
    i64 lo = 4;
    for (std::size_t d = 0; d < nest.dims(); ++d)
      lo = std::max<i64>(lo, nest.deps().max_component(d) + 1);
    const std::vector<i64> heights =
        core::height_grid(lo, problem.max_tile_height(), 1.4);
    if (heights.size() < 4) continue;
    SweepOptions opts;
    opts.prune_slack = 2.0;
    SCOPED_TRACE("trial " + std::to_string(trial));
    EXPECT_NO_THROW(
        core::verify_pruned_selection(problem, heights, opts));
    ++ran;
  }
  EXPECT_GE(ran, 4) << "random generator skipped too many instances";
}

/// Threaded pruned sweeps (suite name matches the TSan preset filter):
/// the worker pool, the thread-local arenas and the pruning mask must
/// compose without changing a byte of the selection.
TEST(ParallelPruneTest, ThreadedSelectionIdenticalToSerial) {
  const Problem problem = core::paper_problem_i();
  const std::vector<i64> heights = grid_for(problem);
  const SweepSelection serial = core::sweep_select(problem, heights, {});
  SweepOptions par;
  par.threads = 4;
  const SweepSelection threaded =
      core::sweep_select(problem, heights, par);
  ASSERT_EQ(serial.points.size(), threaded.points.size());
  EXPECT_TRUE(
      verdict_bits_equal(serial.best_overlap, threaded.best_overlap));
  EXPECT_TRUE(verdict_bits_equal(serial.best_nonoverlap,
                                 threaded.best_nonoverlap));
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].t_overlap, threaded.points[i].t_overlap);
    EXPECT_EQ(serial.points[i].t_nonoverlap,
              threaded.points[i].t_nonoverlap);
    EXPECT_EQ(serial.simulated_overlap[i], threaded.simulated_overlap[i]);
  }
}
