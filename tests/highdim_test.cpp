// Higher-dimensional coverage: the paper's model is n-dimensional; these
// tests run 4-D nests through the whole stack (tiling, both schedules,
// functional validation, codegen) and check the n-D closed forms.
#include <gtest/gtest.h>

#include "tilo/codegen/mpi_program.hpp"
#include "tilo/exec/run.hpp"
#include "tilo/loopnest/workloads.hpp"
#include "tilo/sched/pi_search.hpp"
#include "tilo/sched/uetuct.hpp"

using namespace tilo;
using lat::Box;
using lat::Vec;
using loop::DependenceSet;
using loop::LoopNest;
using sched::ScheduleKind;
using tile::RectTiling;
using util::i64;

namespace {

mach::MachineParams tiny_params() {
  mach::MachineParams p;
  p.t_c = 1e-6;
  p.t_t = 0.02e-6;
  p.bytes_per_element = 8;
  p.wire_latency = 1e-6;
  p.fill_mpi_buffer = mach::AffineCost{3e-6, 0.0};
  p.fill_kernel_buffer = mach::AffineCost{3e-6, 0.0};
  return p;
}

LoopNest stencil4d() {
  return LoopNest(
      "stencil4d", Box::from_extents(Vec{6, 6, 6, 20}),
      DependenceSet({Vec{1, 0, 0, 0}, Vec{0, 1, 0, 0}, Vec{0, 0, 1, 0},
                     Vec{0, 0, 0, 1}}),
      std::make_shared<loop::SqrtSumKernel>());
}

}  // namespace

TEST(HighDimTest, FourDimensionalFunctionalBothSchedules) {
  const LoopNest nest = stencil4d();
  for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
    const exec::TilePlan plan = exec::make_plan_explicit(
        nest, RectTiling(Vec{3, 3, 3, 5}), kind, 3, Vec{2, 2, 2, 1});
    EXPECT_EQ(plan.mapping.num_ranks(), 8);
    EXPECT_DOUBLE_EQ(exec::run_and_validate(nest, plan, tiny_params()), 0.0)
        << "kind " << static_cast<int>(kind);
  }
}

TEST(HighDimTest, FourDimensionalScheduleLengths) {
  const LoopNest nest = stencil4d();
  const tile::TiledSpace space(nest, RectTiling(Vec{3, 3, 3, 5}));
  const Vec u = space.last_tile();  // (1, 1, 1, 3)
  EXPECT_EQ(sched::nonoverlap_schedule_length(u), 1 + 1 + 1 + 3 + 1);
  EXPECT_EQ(sched::overlap_schedule_length(u, 3), 2 + 2 + 2 + 3 + 1);
  EXPECT_EQ(sched::overlap_schedule_length(u, 3),
            sched::uetuct_makespan(u, 3));
}

TEST(HighDimTest, FourDimensionalPiSearchRecoversClosedForms) {
  const LoopNest nest = stencil4d();
  const tile::TiledSpace space(nest, RectTiling(Vec{3, 3, 3, 5}));
  const auto plain = sched::optimal_pi_uniform(space.tile_space(),
                                               space.tile_deps(), 1, 2);
  EXPECT_EQ(plain.pi, (Vec{1, 1, 1, 1}));

  std::vector<i64> gaps;
  for (const Vec& e : space.tile_deps()) {
    bool comm = false;
    for (std::size_t d = 0; d < 3; ++d)
      if (e[d] != 0) comm = true;
    gaps.push_back(comm ? 2 : 1);
  }
  const auto over =
      sched::optimal_pi(space.tile_space(), space.tile_deps(), gaps, 2);
  EXPECT_EQ(over.pi, (Vec{2, 2, 2, 1}));
}

TEST(HighDimTest, FourDimensionalCodegenIsValidC) {
  const LoopNest nest = stencil4d();
  const exec::TilePlan plan = exec::make_plan_explicit(
      nest, RectTiling(Vec{3, 3, 3, 5}), ScheduleKind::kOverlap, 3,
      Vec{2, 2, 2, 1});
  const std::string src = gen::generate_mpi_program(nest, plan);
  EXPECT_NE(src.find("#define NDIMS 4"), std::string::npos);
  EXPECT_NE(src.find("#define TOTAL_RANKS 8"), std::string::npos);
}

TEST(HighDimTest, OneDimensionalDegenerateChain) {
  // n = 1: a pure recurrence; one processor, no communication, both
  // schedules collapse to sequential chunked execution.
  const LoopNest nest("chain", Box::from_extents(Vec{64}),
                      DependenceSet({Vec{1}}),
                      std::make_shared<loop::SumKernel>(0.5));
  for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
    const exec::TilePlan plan =
        exec::make_plan(nest, RectTiling(Vec{8}), kind);
    EXPECT_EQ(plan.mapping.num_ranks(), 1);
    const exec::RunResult r = exec::run_plan(
        nest, plan, tiny_params(), exec::RunOptions{.functional = true});
    EXPECT_EQ(r.messages, 0);
    EXPECT_DOUBLE_EQ(exec::run_and_validate(nest, plan, tiny_params()),
                     0.0);
  }
}
