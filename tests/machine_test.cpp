// Unit tests for tilo::mach — machine parameters, the A/B step-cost model
// (paper eqs. 3-5, Fig. 4), and the grain optimizers.  The hand-computed
// expectations come straight from the paper's Examples 1 and 3.
#include <gtest/gtest.h>

#include <cmath>

#include "tilo/machine/cost.hpp"
#include "tilo/machine/optimize.hpp"
#include "tilo/machine/params.hpp"

using namespace tilo;
using mach::AffineCost;
using mach::MachineParams;
using mach::OverlapLevel;
using mach::StepCost;
using mach::StepShape;
using util::i64;

TEST(ParamsTest, AffineCostEvaluates) {
  const AffineCost c{10e-6, 2e-9};
  EXPECT_DOUBLE_EQ(c.at(0), 10e-6);
  EXPECT_DOUBLE_EQ(c.at(1000), 12e-6);
}

TEST(ParamsTest, PaperClusterMatchesMeasuredFillCosts) {
  const MachineParams p = MachineParams::paper_cluster();
  EXPECT_DOUBLE_EQ(p.t_c, 0.441e-6);
  // The affine fit must reproduce the paper's two measured points within
  // a few percent (Fig. 12: 7104 B -> 0.627 ms, 8608 B -> 0.745 ms).
  EXPECT_NEAR(p.fill_mpi_buffer.at(7104), 627e-6, 5e-6);
  EXPECT_NEAR(p.fill_mpi_buffer.at(8608), 745e-6, 5e-6);
}

TEST(ParamsTest, IdealizedExampleSplitsStartupEvenly) {
  const MachineParams p = MachineParams::idealized_example();
  // t_s = 100 t_c = 100 us, split as fill_MPI = fill_kernel = 50 us.
  EXPECT_DOUBLE_EQ(p.t_s(), 100e-6);
  EXPECT_DOUBLE_EQ(p.fill_mpi_buffer.at(12345), 50e-6);
}

TEST(StepCostTest, PaperExample1NonOverlappingStep) {
  // Example 1: g = 100, t_c = 1 us, one send + one recv of V_comm = 20
  // floats: T = 100 t_c + 2 t_s + 20*4*0.8 t_c = 364 t_c = 364 us.
  const MachineParams p = MachineParams::idealized_example();
  StepShape shape;
  shape.iterations = 100;
  shape.send_bytes = {80};
  shape.recv_bytes = {80};
  const StepCost c = mach::step_cost(p, shape);
  EXPECT_NEAR(c.step_time(OverlapLevel::kNone), 364e-6, 1e-12);
  // Total over the paper's 1099 hyperplanes: 0.400036 s -> "0.4 secs".
  EXPECT_NEAR(mach::total_nonoverlap(p, shape, 1099), 0.400036, 1e-9);
}

TEST(StepCostTest, PaperExample3OverlappingStep) {
  // Example 3: same tile, overlapping schedule.  CPU side
  // A1 + A2 + A3 = 50 + 100 + 50 = 200 t_c; comm side
  // B = 50 + 50 + 20*4*0.8 = 164 t_c < CPU side, so the step is CPU-bound.
  const MachineParams p = MachineParams::idealized_example();
  StepShape shape;
  shape.iterations = 100;
  shape.send_bytes = {80};
  shape.recv_bytes = {80};
  const StepCost c = mach::step_cost(p, shape);
  EXPECT_NEAR(c.cpu_side(), 200e-6, 1e-12);
  EXPECT_NEAR(c.comm_side(), 164e-6, 1e-12);
  EXPECT_NEAR(c.step_time(OverlapLevel::kDma), 200e-6, 1e-12);
  // Overlapping schedule length P = 999 + 2*99 + 1 = 1198 steps:
  // T = 1198 * 200 us = 0.2396 s — the paper's "0.24 secs", vs 0.4 s
  // for the non-overlapping schedule.
  EXPECT_NEAR(mach::total_overlap(p, shape, 1198), 0.2396, 1e-9);
}

TEST(StepCostTest, OverlapNeverSlowerThanNone) {
  const MachineParams p = MachineParams::paper_cluster();
  for (i64 g : {10, 100, 1000, 10000}) {
    StepShape shape;
    shape.iterations = g;
    shape.send_bytes = {4 * g / 10, 4 * g / 10};
    shape.recv_bytes = {4 * g / 10, 4 * g / 10};
    const StepCost c = mach::step_cost(p, shape);
    EXPECT_LE(c.step_time(OverlapLevel::kDma),
              c.step_time(OverlapLevel::kNone));
    EXPECT_LE(c.step_time(OverlapLevel::kDuplexDma),
              c.step_time(OverlapLevel::kDma));
  }
}

TEST(StepCostTest, DuplexSplitsSendAndReceivePipelines) {
  MachineParams p = MachineParams::idealized_example();
  StepShape shape;
  shape.iterations = 1;  // make the step comm-bound
  shape.send_bytes = {1000};
  shape.recv_bytes = {1000};
  const StepCost c = mach::step_cost(p, shape);
  // kDma serializes all B stages; duplex runs send and recv sides in
  // parallel, so its comm side is the max of the two halves.
  EXPECT_NEAR(c.step_time(OverlapLevel::kDma), c.comm_side(), 1e-15);
  EXPECT_NEAR(c.step_time(OverlapLevel::kDuplexDma),
              std::max(c.b1 + c.b2, c.b3 + c.b4), 1e-15);
  EXPECT_LT(c.step_time(OverlapLevel::kDuplexDma),
            c.step_time(OverlapLevel::kDma));
}

TEST(StepCostTest, WireTimeSplitsIntoHalves) {
  MachineParams p;
  p.t_c = 1e-6;
  p.t_t = 1e-6;
  p.fill_mpi_buffer = AffineCost{};
  p.fill_kernel_buffer = AffineCost{};
  StepShape shape;
  shape.iterations = 0;
  shape.send_bytes = {100};
  shape.recv_bytes = {100};
  const StepCost c = mach::step_cost(p, shape);
  EXPECT_DOUBLE_EQ(c.b4, 50e-6);
  EXPECT_DOUBLE_EQ(c.b1, 50e-6);
  EXPECT_DOUBLE_EQ(c.comm_side(), 100e-6);  // one full transmit per pair
}

TEST(StepCostTest, HodzicShangOptimalGrain) {
  // Example 1: g = c * t_s / t_c = 1 * 100 = 100.
  const MachineParams p = MachineParams::idealized_example();
  EXPECT_NEAR(mach::hodzic_shang_optimal_g(p, 1), 100.0, 1e-9);
  EXPECT_NEAR(mach::hodzic_shang_optimal_g(p, 2), 200.0, 1e-9);
}

TEST(StepCostTest, EquationFiveIsCpuSideTimesLength) {
  const MachineParams p = MachineParams::paper_cluster();
  StepShape shape;
  shape.iterations = 7104;
  shape.send_bytes = {7104, 7104};
  shape.recv_bytes = {7104, 7104};
  const StepCost c = mach::step_cost(p, shape);
  EXPECT_NEAR(mach::total_overlap_cpu_bound(p, shape, 53),
              53.0 * c.cpu_side(), 1e-12);
}

// ---------------------------------------------------------- Optimizers ----

TEST(OptimizeTest, GoldenSectionFindsParabolaMinimum) {
  const auto f = [](double x) { return (x - 3.7) * (x - 3.7) + 1.0; };
  const mach::Minimum m = mach::golden_section(f, 0.0, 10.0, 1e-9);
  EXPECT_NEAR(m.x, 3.7, 1e-6);
  EXPECT_NEAR(m.value, 1.0, 1e-9);
}

TEST(OptimizeTest, GoldenSectionHandlesBoundaryMinimum) {
  const auto f = [](double x) { return x; };
  const mach::Minimum m = mach::golden_section(f, 2.0, 9.0, 1e-9);
  EXPECT_NEAR(m.x, 2.0, 1e-5);
}

TEST(OptimizeTest, IntegerSweepExactArgmin) {
  const auto f = [](i64 x) {
    return static_cast<double>((x - 17) * (x - 17));
  };
  const mach::IntMinimum m = mach::integer_sweep(f, 1, 100);
  EXPECT_EQ(m.x, 17);
  EXPECT_EQ(m.value, 0.0);
}

TEST(OptimizeTest, IntegerSweepTieBreaksToSmallest) {
  const auto f = [](i64 x) { return x == 4 || x == 9 ? 1.0 : 2.0; };
  EXPECT_EQ(mach::integer_sweep(f, 1, 20).x, 4);
}

TEST(OptimizeTest, GeometricSweepNearOptimalOnSmoothCurve) {
  // A completion-time-like curve: a/x + b*x with minimum at sqrt(a/b).
  const auto f = [](i64 x) {
    const double xd = static_cast<double>(x);
    return 1e6 / xd + 0.25 * xd;
  };
  const mach::IntMinimum coarse = mach::geometric_sweep(f, 1, 100000);
  const i64 exact = 2000;  // sqrt(1e6 / 0.25)
  EXPECT_NEAR(static_cast<double>(coarse.x), static_cast<double>(exact),
              static_cast<double>(exact) * 0.05);
  EXPECT_NEAR(coarse.value, f(exact), f(exact) * 0.01);
}

TEST(OptimizeTest, GeometricSweepCoversEndpoints) {
  const auto f = [](i64 x) { return -static_cast<double>(x); };  // min at hi
  EXPECT_EQ(mach::geometric_sweep(f, 3, 977).x, 977);
  const auto g = [](i64 x) { return static_cast<double>(x); };  // min at lo
  EXPECT_EQ(mach::geometric_sweep(g, 3, 977).x, 3);
}

TEST(OptimizeTest, BadRangesThrow) {
  const auto f = [](i64) { return 0.0; };
  EXPECT_THROW(mach::integer_sweep(f, 5, 4), util::Error);
  EXPECT_THROW(mach::geometric_sweep(f, 0, 4), util::Error);
  EXPECT_THROW(
      mach::golden_section([](double) { return 0.0; }, 1.0, 1.0),
      util::Error);
}
