// Integration tests for the executors: functional correctness of both the
// blocking (non-overlapping) and nonblocking (overlapping) programs against
// the sequential reference, message accounting, determinism, and timing
// sanity (overlap >= utilization argument).
#include <gtest/gtest.h>

#include "tilo/exec/run.hpp"
#include "tilo/loopnest/workloads.hpp"
#include "tilo/trace/timeline.hpp"

using namespace tilo;
using exec::RunOptions;
using exec::RunResult;
using exec::TilePlan;
using lat::Box;
using lat::Vec;
using loop::DependenceSet;
using loop::LoopNest;
using sched::ScheduleKind;
using tile::RectTiling;
using util::i64;

namespace {

mach::MachineParams fast_params() {
  // Small constant costs keep the event count low in functional tests.
  mach::MachineParams p;
  p.t_c = 1e-6;
  p.t_t = 0.01e-6;
  p.bytes_per_element = 8;  // we ship doubles
  p.wire_latency = 2e-6;
  p.fill_mpi_buffer = mach::AffineCost{5e-6, 0.0};
  p.fill_kernel_buffer = mach::AffineCost{5e-6, 0.0};
  return p;
}

}  // namespace

TEST(ExecFunctionalTest, Stencil3DBothSchedulesMatchSequential) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 24);
  for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
    const TilePlan plan =
        exec::make_plan(nest, RectTiling(Vec{4, 4, 6}), kind);
    EXPECT_DOUBLE_EQ(exec::run_and_validate(nest, plan, fast_params()), 0.0)
        << "kind " << static_cast<int>(kind);
  }
}

TEST(ExecFunctionalTest, Example1DiagonalDepsMatchSequential) {
  // The paper's Example 1 kernel (includes the corner dependence (1,1)),
  // scaled to 100 x 10, tiled 10 x 2, mapped along dim 0 with 5 processors.
  const LoopNest nest = loop::example1_nest(100);
  for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
    const TilePlan plan = exec::make_plan_explicit(
        nest, RectTiling(Vec{10, 2}), kind, 0, Vec{1, 5});
    EXPECT_DOUBLE_EQ(exec::run_and_validate(nest, plan, fast_params()), 0.0);
  }
}

TEST(ExecFunctionalTest, PartialBoundaryTiles) {
  // Extents deliberately not multiples of the tile sides.
  const LoopNest nest = loop::stencil3d_nest(7, 9, 23);
  for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
    const TilePlan plan =
        exec::make_plan(nest, RectTiling(Vec{3, 4, 5}), kind);
    EXPECT_DOUBLE_EQ(exec::run_and_validate(nest, plan, fast_params()), 0.0);
  }
}

TEST(ExecFunctionalTest, BlockDistributionMultipleColumnsPerRank) {
  // 4x4 tile columns on a 2x2 processor grid: 4 columns per rank.
  const LoopNest nest = loop::stencil3d_nest(16, 16, 64);
  for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
    const TilePlan plan = exec::make_plan_with_procs(
        nest, RectTiling(Vec{4, 4, 8}), kind, Vec{2, 2, 1});
    EXPECT_EQ(plan.mapping.num_ranks(), 4);
    EXPECT_DOUBLE_EQ(exec::run_and_validate(nest, plan, fast_params()), 0.0);
  }
}

TEST(ExecFunctionalTest, SingleRankDegenerateCase) {
  const LoopNest nest = loop::stencil3d_nest(4, 4, 8);
  const TilePlan plan = exec::make_plan_with_procs(
      nest, RectTiling(Vec{4, 4, 2}), ScheduleKind::kOverlap, Vec{1, 1, 1});
  const RunResult r = exec::run_plan(nest, plan, fast_params(),
                                     RunOptions{.functional = true});
  EXPECT_EQ(r.messages, 0);  // everything is rank-local
  EXPECT_DOUBLE_EQ(exec::run_and_validate(nest, plan, fast_params()), 0.0);
}

TEST(ExecFunctionalTest, ThickDependencesAcrossRanks) {
  const LoopNest nest("thick", Box::from_extents(Vec{12, 18}),
                      DependenceSet({Vec{2, 0}, Vec{0, 3}, Vec{1, 1}}),
                      std::make_shared<loop::SumKernel>(0.2));
  for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
    const TilePlan plan = exec::make_plan_explicit(
        nest, RectTiling(Vec{4, 6}), kind, 1, Vec{3, 1});
    EXPECT_DOUBLE_EQ(exec::run_and_validate(nest, plan, fast_params()), 0.0);
  }
}

TEST(ExecTimedTest, MessageCountMatchesGeometry) {
  // 2x2x4 tiles, one column per rank (4 ranks): cross-rank messages flow
  // along tile deps (1,0,0) and (0,1,0) for every k step.
  const LoopNest nest = loop::stencil3d_nest(8, 8, 16);
  const TilePlan plan = exec::make_plan(nest, RectTiling(Vec{4, 4, 4}),
                                        ScheduleKind::kOverlap);
  const RunResult r = exec::run_plan(nest, plan, fast_params());
  // Directions (1,0,0): tiles with t0 = 0 (2 x 4 k-steps... per geometry:
  // source tiles t with t+e in space and different rank:
  // e=(1,0,0): 1*2*4 = 8; e=(0,1,0): 2*1*4 = 8.  Total 16.
  EXPECT_EQ(r.messages, 16);
  // Each face message carries 4*4 points of 8 bytes.
  EXPECT_EQ(r.bytes, 16 * 16 * 8);
}

TEST(ExecTimedTest, DeterministicAcrossRuns) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 32);
  const TilePlan plan = exec::make_plan(nest, RectTiling(Vec{4, 4, 4}),
                                        ScheduleKind::kOverlap);
  const RunResult a = exec::run_plan(nest, plan, fast_params());
  const RunResult b = exec::run_plan(nest, plan, fast_params());
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.events, b.events);
}

TEST(ExecTimedTest, OverlapBeatsNonOverlapOnCommHeavyProblem) {
  // The paper's headline claim, on a scaled-down experiment.
  const LoopNest nest = loop::stencil3d_nest(8, 8, 256);
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  const TilePlan over = exec::make_plan(nest, RectTiling(Vec{4, 4, 16}),
                                        ScheduleKind::kOverlap);
  const TilePlan non = exec::make_plan(nest, RectTiling(Vec{4, 4, 16}),
                                       ScheduleKind::kNonOverlap);
  const double t_over = exec::run_plan(nest, over, p).seconds;
  const double t_non = exec::run_plan(nest, non, p).seconds;
  EXPECT_LT(t_over, t_non);
}

TEST(ExecTimedTest, FunctionalAndTimedRunsHaveIdenticalTiming) {
  // Moving real payloads must not change the simulated clock.
  const LoopNest nest = loop::stencil3d_nest(8, 8, 16);
  for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
    const TilePlan plan =
        exec::make_plan(nest, RectTiling(Vec{4, 4, 4}), kind);
    const RunResult timed = exec::run_plan(nest, plan, fast_params());
    const RunResult func = exec::run_plan(nest, plan, fast_params(),
                                          RunOptions{.functional = true});
    EXPECT_EQ(timed.completion, func.completion);
    EXPECT_EQ(timed.messages, func.messages);
  }
}

TEST(ExecTimedTest, TimelineShowsPipelinedComputePhases) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 64);
  const TilePlan plan = exec::make_plan(nest, RectTiling(Vec{4, 4, 4}),
                                        ScheduleKind::kOverlap);
  trace::Timeline tl;
  RunOptions opts;
  opts.sink = &tl;
  const RunResult r = exec::run_plan(nest, plan, fast_params(), opts);
  EXPECT_EQ(tl.makespan(), r.completion);
  // Every rank computes the same total tile volume.
  const sim::Time c0 = tl.phase_time(0, trace::Phase::kCompute);
  for (int n = 1; n < 4; ++n)
    EXPECT_EQ(tl.phase_time(n, trace::Phase::kCompute), c0);
  EXPECT_GT(tl.mean_compute_utilization(), 0.0);
}

TEST(ExecTimedTest, DuplexLevelNotSlowerThanSharedDma) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 128);
  const TilePlan plan = exec::make_plan(nest, RectTiling(Vec{4, 4, 4}),
                                        ScheduleKind::kOverlap);
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  RunOptions dma;
  RunOptions duplex;
  duplex.comm.level = mach::OverlapLevel::kDuplexDma;
  EXPECT_LE(exec::run_plan(nest, plan, p, duplex).seconds,
            exec::run_plan(nest, plan, p, dma).seconds);
}

TEST(ExecTimedTest, SharedBusSlowerThanSwitch) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 128);
  const TilePlan plan = exec::make_plan(nest, RectTiling(Vec{4, 4, 8}),
                                        ScheduleKind::kOverlap);
  mach::MachineParams p = mach::MachineParams::paper_cluster();
  p.t_t = 0.8e-6;  // make wire time dominant so the bus visibly contends
  RunOptions switched;
  RunOptions bus;
  bus.comm.network = msg::Network::kSharedBus;
  EXPECT_LE(exec::run_plan(nest, plan, p, switched).seconds,
            exec::run_plan(nest, plan, p, bus).seconds);
}

TEST(ExecTimedTest, FunctionalModeAlsoRecordsTimeline) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 16);
  const TilePlan plan = exec::make_plan(nest, RectTiling(Vec{4, 4, 4}),
                                        ScheduleKind::kOverlap);
  trace::Timeline tl;
  RunOptions opts;
  opts.functional = true;
  opts.sink = &tl;
  const RunResult r = exec::run_plan(nest, plan, fast_params(), opts);
  EXPECT_EQ(tl.makespan(), r.completion);
  EXPECT_GT(tl.phase_time(0, trace::Phase::kCompute), 0);
}

TEST(ExecTimedTest, PipelinedTripletStructureMatchesExample2) {
  // Paper Example 2 / Fig. 4b: in the steady state each processor's CPU
  // cycles through fill-send (A1, the k-1 results leaving), compute (A2,
  // tile k) and fill-recv (A3, the k+1 inputs arriving) — sends of a step
  // happen before its compute, receives after.  Verify the recorded CPU
  // phase sequence of an interior rank has exactly that shape.
  // 3x3 processor grid so rank 4 = proc (1, 1) is a true interior rank
  // with both upstream and downstream neighbors.
  const LoopNest nest = loop::stencil3d_nest(12, 12, 128);
  const TilePlan plan = exec::make_plan(nest, RectTiling(Vec{4, 4, 8}),
                                        ScheduleKind::kOverlap);
  trace::Timeline tl;
  RunOptions opts;
  opts.sink = &tl;
  exec::run_plan(nest, plan, mach::MachineParams::paper_cluster(), opts);

  std::vector<trace::Phase> cpu_seq;
  for (const trace::Interval& iv : tl.intervals()) {
    if (iv.node != 4) continue;
    if (iv.phase == trace::Phase::kCompute ||
        iv.phase == trace::Phase::kFillMpiSend ||
        iv.phase == trace::Phase::kFillMpiRecv)
      cpu_seq.push_back(iv.phase);
  }
  ASSERT_GT(cpu_seq.size(), 20u);
  // Steady state: between two computes there are both the sends of the
  // finished tile and the receives for the tile after next.
  int checked = 0;
  for (std::size_t i = 0; i + 1 < cpu_seq.size(); ++i) {
    if (cpu_seq[i] != trace::Phase::kCompute) continue;
    // Scan forward to the next compute; collect what happens in between.
    bool saw_send = false;
    bool saw_recv = false;
    std::size_t j = i + 1;
    for (; j < cpu_seq.size() && cpu_seq[j] != trace::Phase::kCompute; ++j) {
      saw_send |= cpu_seq[j] == trace::Phase::kFillMpiSend;
      saw_recv |= cpu_seq[j] == trace::Phase::kFillMpiRecv;
    }
    if (j == cpu_seq.size()) break;  // epilogue
    // Skip the pipeline prologue (first couple of steps).
    if (++checked <= 2) continue;
    if (j + 1 < cpu_seq.size()) {
      EXPECT_TRUE(saw_recv) << "no A3 between computes " << i << ".." << j;
      EXPECT_TRUE(saw_send) << "no A1 between computes " << i << ".." << j;
    }
  }
  EXPECT_GT(checked, 5);
}

TEST(ExecErrorTest, MismatchedDomainRejected) {
  const LoopNest nest_a = loop::stencil3d_nest(8, 8, 16);
  const LoopNest nest_b = loop::stencil3d_nest(8, 8, 32);
  const TilePlan plan = exec::make_plan(nest_a, RectTiling(Vec{4, 4, 4}),
                                        ScheduleKind::kOverlap);
  EXPECT_THROW(exec::run_plan(nest_b, plan, fast_params()), util::Error);
}

TEST(ExecErrorTest, FunctionalNeedsKernel) {
  const LoopNest bare("bare", Box::from_extents(Vec{8, 8}),
                      DependenceSet({Vec{1, 0}, Vec{0, 1}}));
  const TilePlan plan = exec::make_plan(bare, RectTiling(Vec{4, 4}),
                                        ScheduleKind::kOverlap);
  EXPECT_THROW(exec::run_plan(bare, plan, fast_params(),
                              RunOptions{.functional = true}),
               util::Error);
}

TEST(ExecErrorTest, OverlapPlanRejectsNoneLevel) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 16);
  const TilePlan plan = exec::make_plan(nest, RectTiling(Vec{4, 4, 4}),
                                        ScheduleKind::kOverlap);
  RunOptions opts;
  opts.comm.level = mach::OverlapLevel::kNone;
  EXPECT_THROW(exec::run_plan(nest, plan, fast_params(), opts), util::Error);
}
