// The strongest code-generator check available without a real MPI: compile
// the generated C program against the fork-based multi-process MPI stub
// (tests/stub_mpi_fork.h), run it with 4 actual ranks exchanging real
// messages over socketpairs, and compare the reduced checksum against the
// sequential reference.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "tilo/codegen/mpi_program.hpp"
#include "tilo/loopnest/parse.hpp"
#include "tilo/loopnest/reference.hpp"
#include "tilo/loopnest/workloads.hpp"

#ifndef TILO_TESTS_DIR
#error "TILO_TESTS_DIR must be defined by the build"
#endif

using namespace tilo;
using lat::Vec;
using loop::LoopNest;
using sched::ScheduleKind;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream os(path);
  ASSERT_TRUE(os.good()) << path;
  os << text;
}

/// Builds and runs the generated program under the fork stub with `ranks`
/// processes; returns the printed checksum.
double run_multirank(const std::string& program, int ranks, int* exit_code) {
  static int counter = 0;
  const std::string dir = ::testing::TempDir() + "tilo_multirank_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter++);
  EXPECT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  spit(dir + "/mpi.h",
       slurp(std::string(TILO_TESTS_DIR) + "/stub_mpi_fork.h"));
  spit(dir + "/prog.c", program);
  const std::string build = "gcc -x c -std=c99 -O1 -I " + dir + " -o " +
                            dir + "/prog " + dir + "/prog.c -lm 2> " +
                            dir + "/log.txt";
  EXPECT_EQ(std::system(build.c_str()), 0) << slurp(dir + "/log.txt");
  const std::string run = "TILO_STUB_RANKS=" + std::to_string(ranks) + " " +
                          dir + "/prog > " + dir + "/out.txt 2>&1";
  *exit_code = std::system(run.c_str());

  std::ifstream out(dir + "/out.txt");
  std::string word;
  double checksum = std::nan("");
  out >> word >> checksum;
  EXPECT_EQ(word, "checksum") << slurp(dir + "/out.txt");
  return checksum;
}

}  // namespace

class MultiRankCodegenTest
    : public ::testing::TestWithParam<sched::ScheduleKind> {};

TEST_P(MultiRankCodegenTest, FourRanksMatchSequentialChecksum) {
  // Parsed nests have the constant boundary the generated code also uses
  // (the built-in kernels' boundaries are point-dependent, so they cannot
  // value-round-trip through codegen).
  const LoopNest nest = loop::parse_nest(
      "FOR i = 0 TO 7\n FOR j = 0 TO 7\n FOR k = 0 TO 23\n"
      "  A(i,j,k) = sqrt(A(i-1,j,k)) + sqrt(A(i,j-1,k)) + "
      "sqrt(A(i,j,k-1))\n ENDFOR\n ENDFOR\nENDFOR\n");
  const exec::TilePlan plan = exec::make_plan_explicit(
      nest, tile::RectTiling(Vec{4, 4, 6}), GetParam(), 2, Vec{2, 2, 1});
  ASSERT_EQ(plan.mapping.num_ranks(), 4);
  const std::string program = gen::generate_mpi_program(nest, plan);

  int exit_code = -1;
  const double checksum = run_multirank(program, 4, &exit_code);
  ASSERT_EQ(exit_code, 0);

  const loop::DenseField ref = loop::run_sequential(nest);
  double expect = 0.0;
  for (double v : ref.values) expect += v;
  EXPECT_NEAR(checksum, expect, 1e-9 * std::abs(expect));
}

INSTANTIATE_TEST_SUITE_P(Schedules, MultiRankCodegenTest,
                         ::testing::Values(ScheduleKind::kNonOverlap,
                                           ScheduleKind::kOverlap),
                         [](const auto& info) {
                           return info.param == ScheduleKind::kOverlap
                                      ? std::string("ProcNB")
                                      : std::string("ProcB");
                         });

TEST(MultiRankCodegenTest, PartialTilesAcrossRanks) {
  // Extents that do not divide: partial boundary tiles on real ranks.
  const LoopNest nest = loop::parse_nest(
      "FOR i = 0 TO 6\n FOR j = 0 TO 5\n FOR k = 0 TO 22\n"
      "  A(i,j,k) = 0.4 * (A(i-1,j,k) + A(i,j-1,k) + A(i,j,k-1))\n"
      " ENDFOR\n ENDFOR\nENDFOR\n");
  const exec::TilePlan plan = exec::make_plan_explicit(
      nest, tile::RectTiling(Vec{4, 3, 5}), ScheduleKind::kOverlap, 2,
      Vec{2, 2, 1});
  ASSERT_EQ(plan.mapping.num_ranks(), 4);
  const std::string program = gen::generate_mpi_program(nest, plan);

  int exit_code = -1;
  const double checksum = run_multirank(program, 4, &exit_code);
  ASSERT_EQ(exit_code, 0);

  const loop::DenseField ref = loop::run_sequential(nest);
  double expect = 0.0;
  for (double v : ref.values) expect += v;
  EXPECT_NEAR(checksum, expect, 1e-9 * std::abs(expect));
}

TEST(MultiRankCodegenTest, CornerDependence2D) {
  // Example-1-style corner dependence through generated code on 3 ranks.
  const LoopNest nest2 = loop::parse_nest(
      "FOR i1 = 0 TO 23\n FOR i2 = 0 TO 17\n"
      "  A(i1,i2) = 0.25 * (A(i1-1,i2-1) + A(i1-1,i2) + A(i1,i2-1))\n"
      " ENDFOR\nENDFOR\n");
  const exec::TilePlan plan = exec::make_plan_explicit(
      nest2, tile::RectTiling(Vec{8, 6}), ScheduleKind::kOverlap, 0,
      Vec{1, 3});
  ASSERT_EQ(plan.mapping.num_ranks(), 3);
  const std::string program = gen::generate_mpi_program(nest2, plan);

  int exit_code = -1;
  const double checksum = run_multirank(program, 3, &exit_code);
  ASSERT_EQ(exit_code, 0);

  const loop::DenseField ref = loop::run_sequential(nest2);
  double expect = 0.0;
  for (double v : ref.values) expect += v;
  EXPECT_NEAR(checksum, expect, 1e-9 * std::abs(expect));
}
