// Tests for the integer column-echelon decomposition, unimodular
// completion, and the independent-partitioning analysis built on them.
#include <gtest/gtest.h>

#include "tilo/lattice/echelon.hpp"
#include "tilo/loopnest/workloads.hpp"
#include "tilo/sched/partition.hpp"
#include "tilo/util/rng.hpp"

using namespace tilo;
using lat::ColumnEchelon;
using lat::Mat;
using lat::Vec;
using loop::DependenceSet;
using util::i64;

namespace {

/// First nonzero row index of a column (rows() when all zero).
std::size_t pivot_row(const Mat& m, std::size_t c) {
  for (std::size_t r = 0; r < m.rows(); ++r)
    if (m(r, c) != 0) return r;
  return m.rows();
}

void check_echelon_invariants(const Mat& a, const ColumnEchelon& e) {
  // A * U == H and U unimodular.
  EXPECT_EQ(a * e.u, e.h);
  EXPECT_EQ(std::abs(e.u.det()), 1);
  // Pivot rows strictly increase; zero columns trail.
  std::size_t last = 0;
  bool seen_zero = false;
  for (std::size_t c = 0; c < e.h.cols(); ++c) {
    const std::size_t p = pivot_row(e.h, c);
    if (p == e.h.rows()) {
      seen_zero = true;
      continue;
    }
    EXPECT_FALSE(seen_zero) << "nonzero column after a zero column";
    if (c > 0 && c <= e.rank) EXPECT_GT(p, last);
    last = p;
    EXPECT_GT(e.h(p, c), 0) << "pivot must be positive";
    // Entries right of the pivot in its row are zero.
    for (std::size_t j = c + 1; j < e.h.cols(); ++j)
      EXPECT_EQ(e.h(p, j), 0);
  }
}

}  // namespace

TEST(EchelonTest, SmallHandCase) {
  const Mat a{{4, 6}, {2, 2}};
  const ColumnEchelon e = lat::column_echelon(a);
  check_echelon_invariants(a, e);
  EXPECT_EQ(e.rank, 2u);
}

TEST(EchelonTest, RankDeficientMatrix) {
  const Mat a{{1, 2, 3}, {2, 4, 6}};  // rank 1
  const ColumnEchelon e = lat::column_echelon(a);
  check_echelon_invariants(a, e);
  EXPECT_EQ(e.rank, 1u);
  EXPECT_EQ(lat::int_rank(a), 1u);
}

TEST(EchelonTest, PreservesAbsDeterminant) {
  tilo::util::Rng rng(55);
  for (int iter = 0; iter < 30; ++iter) {
    Mat a(3, 3);
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.uniform(-5, 5);
    const ColumnEchelon e = lat::column_echelon(a);
    check_echelon_invariants(a, e);
    EXPECT_EQ(std::abs(e.h.det()), std::abs(a.det()));
  }
}

TEST(EchelonTest, RandomShapesKeepInvariants) {
  tilo::util::Rng rng(99);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t rows = static_cast<std::size_t>(rng.uniform(1, 4));
    const std::size_t cols = static_cast<std::size_t>(rng.uniform(1, 5));
    Mat a(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c) a(r, c) = rng.uniform(-6, 6);
    check_echelon_invariants(a, lat::column_echelon(a));
  }
}

TEST(CompletionTest, FirstRowIsInput) {
  for (const Vec& v : {Vec{1, 1}, Vec{2, 3}, Vec{1, 2, 2}, Vec{3, 5, 7},
                       Vec{0, 1, 0, 0}}) {
    const Mat m = lat::unimodular_complete(v);
    EXPECT_EQ(m.row(0), v) << v.str();
    EXPECT_EQ(std::abs(m.det()), 1) << v.str();
  }
}

TEST(CompletionTest, RequiresGcdOne) {
  EXPECT_THROW(lat::unimodular_complete(Vec{2, 4}), util::Error);
  EXPECT_THROW(lat::unimodular_complete(Vec{0, 0}), util::Error);
}

TEST(CompletionTest, CompletesScheduleVectors) {
  // The overlap hyperplane (2, 2, 1) extends to a full space-time basis.
  const Mat m = lat::unimodular_complete(Vec{2, 2, 1});
  EXPECT_EQ(m.row(0), (Vec{2, 2, 1}));
  EXPECT_EQ(std::abs(m.det()), 1);
}

TEST(PartitionTest, FullRankStencilIsNotPartitionable) {
  // The paper's evaluation kernel: deps span all three dimensions, so no
  // communication-free partitioning exists — tiling is required.
  const auto p = sched::independent_partitioning(
      loop::paper_space_i().deps());
  EXPECT_EQ(p.rank, 3u);
  EXPECT_EQ(p.degree, 0u);
  EXPECT_FALSE(p.is_partitionable());
  EXPECT_TRUE(p.basis.empty());
}

TEST(PartitionTest, RankDeficientDepsSplit) {
  // Dependencies confined to the (i, j) plane: the k direction partitions.
  const DependenceSet deps({Vec{1, 0, 0}, Vec{1, 1, 0}});
  const auto p = sched::independent_partitioning(deps);
  EXPECT_EQ(p.rank, 2u);
  EXPECT_EQ(p.degree, 1u);
  ASSERT_EQ(p.basis.size(), 1u);
  for (const Vec& d : deps) EXPECT_EQ(p.basis[0].dot(d), 0);
  EXPECT_FALSE(p.basis[0].is_zero());
}

TEST(PartitionTest, SingleDependenceChain) {
  // One dependence in 3-D: two independent directions.
  const auto p =
      sched::independent_partitioning(DependenceSet({Vec{1, 2, 3}}));
  EXPECT_EQ(p.degree, 2u);
  ASSERT_EQ(p.basis.size(), 2u);
  // Basis is linearly independent.
  Mat b = Mat::from_columns({p.basis[0], p.basis[1]});
  EXPECT_EQ(lat::int_rank(b), 2u);
}
