// Tests of the plan-compilation service (src/tilo/svc): wire protocol and
// framing robustness, single-flight batching byte-identity, bounded-queue
// load shedding, deadlines, and graceful drain.  The malformed-wire-input
// tests pin the service's survival contract: truncated frames, oversized
// length prefixes, invalid envelope versions, and clients vanishing
// mid-request produce error responses (or clean connection teardown), never
// a crash or a hang.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "tilo/svc/client.hpp"
#include "tilo/svc/protocol.hpp"
#include "tilo/svc/queue.hpp"
#include "tilo/svc/server.hpp"
#include "tilo/svc/socket.hpp"
#include "tilo/util/error.hpp"
#include "tilo/util/rng.hpp"


namespace svc = tilo::svc;
using tilo::pipeline::Json;
using tilo::util::i64;

namespace {

// A light workload (compiles in ~1 ms) and a heavy one (~300 ms) used to
// hold the single worker busy while other requests pile up behind it.
constexpr const char* kQuickSource =
    "FOR i = 0 TO 15\n FOR j = 0 TO 255\n"
    "  Q(i, j) = 0.5 * (Q(i-1, j) + Q(i, j-1))\n ENDFOR\nENDFOR\n";
constexpr const char* kSlowSource =
    "FOR i = 0 TO 255\n FOR j = 0 TO 16383\n"
    "  S(i, j) = 0.5 * (S(i-1, j) + S(i, j-1))\n ENDFOR\nENDFOR\n";

svc::CompileParams quick_params(std::string name = "quick") {
  svc::CompileParams p;
  p.name = std::move(name);
  p.source = kQuickSource;
  p.procs = tilo::lat::Vec(std::vector<i64>{4, 1});
  p.height = 16;
  return p;
}

svc::CompileParams slow_params() {
  svc::CompileParams p;
  p.name = "slow";
  p.source = kSlowSource;
  p.procs = tilo::lat::Vec(std::vector<i64>{8, 1});
  p.height = 2;
  p.simulate = true;  // the simulation is what makes this slow (~300 ms)
  return p;
}

/// A started server on a fresh Unix socket under the test tmpdir.
struct TestServer {
  explicit TestServer(int workers = 2, std::size_t queue_capacity = 64,
                      std::size_t max_frame_bytes = svc::kDefaultMaxFrameBytes) {
    static int counter = 0;
    path = ::testing::TempDir() + "svc_test_" + std::to_string(::getpid()) +
           "_" + std::to_string(counter++) + ".sock";
    svc::ServerConfig cfg;
    cfg.address = "unix:" + path;
    cfg.workers = workers;
    cfg.queue_capacity = queue_capacity;
    cfg.max_frame_bytes = max_frame_bytes;
    server = std::make_unique<svc::Server>(cfg);
    server->start();
  }

  svc::Client client(svc::ClientOptions opts = {}) {
    return svc::Client::connect("unix:" + path, opts);
  }

  /// Raw connection for hand-crafted (malformed) wire bytes.
  svc::Fd raw_connect() {
    return svc::connect_to(server->address(), /*timeout_ms=*/2000);
  }

  std::string path;
  std::unique_ptr<svc::Server> server;
};

/// Sends raw bytes (NOT a framed payload) on a connected socket.
void send_bytes(int fd, const std::string& bytes) {
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
}

std::string length_prefix(std::uint32_t n) {
  std::string p(4, '\0');
  p[0] = static_cast<char>(n >> 24);
  p[1] = static_cast<char>(n >> 16);
  p[2] = static_cast<char>(n >> 8);
  p[3] = static_cast<char>(n);
  return p;
}

svc::Response read_response(int fd, int deadline_ms = 5000) {
  std::string payload;
  const svc::FrameStatus st =
      svc::read_frame(fd, payload, svc::kDefaultMaxFrameBytes, deadline_ms);
  EXPECT_EQ(st, svc::FrameStatus::kFrame)
      << svc::frame_status_name(st);
  return svc::response_from_wire(payload);
}

void expect_accounting_invariant(const svc::ServerStats& s) {
  EXPECT_EQ(s.requests,
            s.completed + s.shed + s.timed_out + s.failed + s.rejected);
}

}  // namespace

// --------------------------------------------------------------- protocol

TEST(SvcProtocolTest, RequestRoundTripsThroughJson) {
  svc::Request req;
  req.op = svc::Op::kCompile;
  req.id = 42;
  req.deadline_ms = 250;
  req.compile = quick_params("heat");
  req.compile.simulate = true;
  req.compile.include_plan = true;

  const svc::Request back =
      svc::request_from_json(Json::parse(svc::request_to_json(req).dump()));
  EXPECT_EQ(back.op, svc::Op::kCompile);
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  EXPECT_EQ(back.compile.name, "heat");
  EXPECT_EQ(back.compile.source, req.compile.source);
  ASSERT_TRUE(back.compile.procs.has_value());
  EXPECT_EQ((*back.compile.procs)[0], 4);
  EXPECT_EQ(back.compile.height, req.compile.height);
  EXPECT_TRUE(back.compile.simulate);
  EXPECT_TRUE(back.compile.include_plan);
}

TEST(SvcProtocolTest, ProblemKeyIgnoresIdAndDeadline) {
  svc::Request a, b;
  a.op = b.op = svc::Op::kCompile;
  a.compile = b.compile = quick_params();
  a.id = 1;
  b.id = 2;
  b.deadline_ms = 9;
  EXPECT_EQ(svc::problem_key(a.compile), svc::problem_key(b.compile));

  b.compile.height = 32;  // any workload knob changes the identity
  EXPECT_NE(svc::problem_key(a.compile), svc::problem_key(b.compile));
}

TEST(SvcProtocolTest, ResponseWireSplicesResultVerbatim) {
  svc::Response resp;
  resp.id = 7;
  resp.result = "{\"V\":16,\"name\":\"x\"}";
  const std::string wire = svc::response_to_wire(resp);
  // The result object's bytes appear unmodified inside the envelope.
  EXPECT_NE(wire.find(resp.result), std::string::npos) << wire;
  const svc::Response back = svc::response_from_wire(wire);
  EXPECT_EQ(back.status, svc::RespStatus::kOk);
  EXPECT_EQ(back.id, resp.id);
  EXPECT_EQ(back.result, resp.result);
}

TEST(SvcProtocolTest, StatusNamesRoundTrip) {
  for (svc::RespStatus st :
       {svc::RespStatus::kOk, svc::RespStatus::kBadRequest,
        svc::RespStatus::kUnsupportedVersion, svc::RespStatus::kOverloaded,
        svc::RespStatus::kTimeout, svc::RespStatus::kShuttingDown,
        svc::RespStatus::kError})
    EXPECT_EQ(svc::status_from(svc::status_name(st)), st);
  EXPECT_THROW(svc::status_from("nonsense"), tilo::util::Error);
}

// ---------------------------------------------------------------- framing

TEST(SvcFramingTest, FrameRoundTripsOverASocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  svc::Fd a(fds[0]), b(fds[1]);
  const std::string payload = "{\"hello\":\"world\"}";
  ASSERT_TRUE(svc::write_frame(a.get(), payload));
  std::string got;
  EXPECT_EQ(svc::read_frame(b.get(), got), svc::FrameStatus::kFrame);
  EXPECT_EQ(got, payload);
}

TEST(SvcFramingTest, CleanCloseIsDistinguishedFromTruncation) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  {
    svc::Fd a(fds[0]);  // close immediately: EOF at a frame boundary
  }
  svc::Fd b(fds[1]);
  std::string got;
  EXPECT_EQ(svc::read_frame(b.get(), got), svc::FrameStatus::kClosed);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  {
    svc::Fd a(fds[0]);
    send_bytes(a.get(), length_prefix(100) + "only ten b");
  }  // EOF mid-frame
  svc::Fd b2(fds[1]);
  EXPECT_EQ(svc::read_frame(b2.get(), got), svc::FrameStatus::kTruncated);
}

TEST(SvcFramingTest, OversizedPrefixIsRejectedWithoutReadingThePayload) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  svc::Fd a(fds[0]), b(fds[1]);
  send_bytes(a.get(), length_prefix(1u << 30));
  std::string got;
  EXPECT_EQ(svc::read_frame(b.get(), got, /*max_bytes=*/1 << 20),
            svc::FrameStatus::kOversized);
}

TEST(SvcFramingTest, ReadDeadlineExpires) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  svc::Fd a(fds[0]), b(fds[1]);
  std::string got;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(svc::read_frame(b.get(), got, svc::kDefaultMaxFrameBytes,
                            /*deadline_ms=*/50),
            svc::FrameStatus::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(40));
}

// ----------------------------------------------------------- BoundedQueue

TEST(SvcQueueTest, AdmissionIsBoundedAndCloseDrains) {
  svc::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: shed, don't block
  EXPECT_EQ(q.depth(), 2u);
  q.close();
  EXPECT_FALSE(q.try_push(4));  // closed: refuse new work
  EXPECT_EQ(q.pop(), std::optional<int>(1));  // backlog still drains
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::nullopt);  // closed and empty: workers exit
}

// --------------------------------------------------- malformed wire input

TEST(SvcServerTest, InvalidJsonGetsBadRequestAndTheServerSurvives) {
  TestServer ts;
  svc::Fd fd = ts.raw_connect();
  ASSERT_TRUE(svc::write_frame(fd.get(), "this is not json"));
  const svc::Response resp = read_response(fd.get());
  EXPECT_EQ(resp.status, svc::RespStatus::kBadRequest);
  EXPECT_FALSE(resp.error.empty());

  // The same connection still works afterwards.
  svc::Request ping;
  ping.op = svc::Op::kPing;
  ping.id = 1;
  ASSERT_TRUE(svc::write_frame(fd.get(), svc::request_to_json(ping).dump()));
  EXPECT_EQ(read_response(fd.get()).status, svc::RespStatus::kOk);
}

TEST(SvcServerTest, WrongEnvelopeVersionGetsDedicatedStatus) {
  TestServer ts;
  svc::Fd fd = ts.raw_connect();
  ASSERT_TRUE(svc::write_frame(
      fd.get(),
      R"({"tilo": "svc.request", "version": 99, "id": 5, "op": "ping"})"));
  const svc::Response resp = read_response(fd.get());
  EXPECT_EQ(resp.status, svc::RespStatus::kUnsupportedVersion);
  EXPECT_EQ(resp.id, std::optional<i64>(5));  // id still echoed back
  EXPECT_NE(resp.error.find("version"), std::string::npos) << resp.error;
}

TEST(SvcServerTest, MissingFieldsGetBadRequest) {
  TestServer ts;
  svc::Fd fd = ts.raw_connect();
  // A compile op with no workload object.
  ASSERT_TRUE(svc::write_frame(
      fd.get(),
      R"({"tilo": "svc.request", "version": 1, "id": 3, "op": "compile"})"));
  EXPECT_EQ(read_response(fd.get()).status, svc::RespStatus::kBadRequest);
}

TEST(SvcServerTest, OversizedFrameIsAnsweredOnceThenClosed) {
  TestServer ts(/*workers=*/1, /*queue_capacity=*/8,
                /*max_frame_bytes=*/1024);
  svc::Fd fd = ts.raw_connect();
  send_bytes(fd.get(), length_prefix(1u << 30));
  const svc::Response resp = read_response(fd.get());
  EXPECT_EQ(resp.status, svc::RespStatus::kBadRequest);
  EXPECT_NE(resp.error.find("cap"), std::string::npos) << resp.error;
  // After an unframeable prefix the server closes the connection.
  std::string rest;
  EXPECT_EQ(svc::read_frame(fd.get(), rest, 1 << 20, 2000),
            svc::FrameStatus::kClosed);
  // ... but keeps serving new connections.
  svc::Client client = ts.client();
  EXPECT_EQ(client.ping().status, svc::RespStatus::kOk);
}

TEST(SvcServerTest, TruncatedFrameEndsTheConnectionOnly) {
  TestServer ts;
  {
    svc::Fd fd = ts.raw_connect();
    send_bytes(fd.get(), length_prefix(500) + "vanishing client");
  }  // disconnect mid-frame
  // The server reader sees kTruncated, tears down that connection, and the
  // service keeps answering others.
  svc::Client client = ts.client();
  EXPECT_EQ(client.ping().status, svc::RespStatus::kOk);
  const svc::ServerStats s = ts.server->stats();
  EXPECT_EQ(s.connections, 2u);
  expect_accounting_invariant(s);
}

TEST(SvcServerTest, MidRequestDisconnectStillAccountsTheRequest) {
  TestServer ts(/*workers=*/1);
  {
    svc::Fd fd = ts.raw_connect();
    svc::Request req;
    req.op = svc::Op::kCompile;
    req.id = 11;
    req.compile = quick_params("goner");
    ASSERT_TRUE(
        svc::write_frame(fd.get(), svc::request_to_json(req).dump()));
  }  // vanish before the response arrives
  // The worker compiles anyway, the response write fails silently, and the
  // request is still accounted as answered.
  for (int i = 0; i < 200 && ts.server->stats().completed < 1; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const svc::ServerStats s = ts.server->stats();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.compiles, 1u);
  expect_accounting_invariant(s);
}

// ------------------------------------------------------------ happy paths

TEST(SvcServerTest, CompilesOverTheWire) {
  TestServer ts;
  svc::Client client = ts.client();
  svc::CompileParams params = quick_params("wire");
  params.simulate = true;
  const svc::Response resp = client.compile(params);
  ASSERT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
  const Json r = Json::parse(resp.result);
  EXPECT_EQ(r.at("name").as_string("name"), "wire");
  EXPECT_EQ(r.at("V").as_integer("V"), 16);
  EXPECT_GT(r.at("schedule_length").as_integer("schedule_length"), 0);
  EXPECT_GT(r.at("predicted_seconds").as_number("predicted_seconds"), 0.0);
  EXPECT_GT(r.at("simulated_seconds").as_number("simulated_seconds"), 0.0);
}

TEST(SvcServerTest, CompileErrorsComeBackAsErrorStatus) {
  TestServer ts;
  svc::Client client = ts.client();
  svc::CompileParams params;
  params.name = "bad";
  // Parses, but reads a value not yet computed: the compiler rejects it.
  params.source = "FOR i = 0 TO 9\n A(i) = A(i+1)\nENDFOR\n";
  const svc::Response resp = client.compile(params);
  EXPECT_EQ(resp.status, svc::RespStatus::kError);
  EXPECT_FALSE(resp.error.empty());
  const svc::ServerStats s = ts.server->stats();
  EXPECT_EQ(s.failed, 1u);
  expect_accounting_invariant(s);
}

TEST(SvcServerTest, PingStatsAndSummaryWork) {
  TestServer ts;
  svc::Client client = ts.client();
  EXPECT_NE(client.ping().result.find("pong"), std::string::npos);
  client.compile(quick_params());
  const svc::Response stats = client.stats();
  ASSERT_EQ(stats.status, svc::RespStatus::kOk) << stats.error;
  const Json s = Json::parse(stats.result);
  EXPECT_GE(s.at("requests").as_integer("requests"), 2);
  EXPECT_EQ(s.at("compiles").as_integer("compiles"), 1);
  std::ostringstream os;
  ts.server->write_summary(os);
  EXPECT_NE(os.str().find("svc summary"), std::string::npos);
  EXPECT_NE(os.str().find("plan cache"), std::string::npos);
}

TEST(SvcServerTest, RepeatCompilesHitThePlanCache) {
  TestServer ts;
  svc::Client client = ts.client();
  ASSERT_EQ(client.compile(quick_params()).status, svc::RespStatus::kOk);
  ASSERT_EQ(client.compile(quick_params()).status, svc::RespStatus::kOk);
  const svc::ServerStats s = ts.server->stats();
  EXPECT_EQ(s.compiles, 2u);
  EXPECT_GE(s.cache_hits, 1u);
}

// ------------------------------------------------- single-flight batching

TEST(SvcServerTest, ConcurrentIdenticalRequestsShareOneCompileByteForByte) {
  TestServer ts(/*workers=*/1);

  // Occupy the only worker with the heavy problem ...
  std::thread holder([&ts] {
    svc::Client client = ts.client();
    const svc::Response resp = client.compile(slow_params());
    EXPECT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
  });
  // ... give the worker time to pop it ...
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // ... then pile identical requests behind it.  The first admission
  // creates the flight; the rest join it while the worker is busy.
  constexpr int kFollowers = 5;
  std::vector<std::string> results(kFollowers);
  std::vector<std::thread> threads;
  for (int i = 0; i < kFollowers; ++i)
    threads.emplace_back([&ts, &results, i] {
      svc::Client client = ts.client();
      const svc::Response resp = client.compile(quick_params("shared"));
      EXPECT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
      results[static_cast<std::size_t>(i)] = resp.result;
    });
  for (std::thread& t : threads) t.join();
  holder.join();

  // Every member of the flight received byte-identical result bytes.
  ASSERT_FALSE(results[0].empty());
  for (int i = 1; i < kFollowers; ++i) EXPECT_EQ(results[0], results[i]);

  const svc::ServerStats s = ts.server->stats();
  EXPECT_EQ(s.batched, static_cast<std::uint64_t>(kFollowers - 1));
  EXPECT_EQ(s.compiles, 2u);  // the slow holder + ONE shared compile
  expect_accounting_invariant(s);

  // A later individual compile of the same problem produces the same bytes
  // as the batched flight did (determinism across the single-flight path).
  svc::Client client = ts.client();
  const svc::Response solo = client.compile(quick_params("shared"));
  ASSERT_EQ(solo.status, svc::RespStatus::kOk) << solo.error;
  EXPECT_EQ(solo.result, results[0]);
}

// ----------------------------------------------------- overload shedding

TEST(SvcServerTest, FullQueueShedsWithOverloadedAndAnswersEveryone) {
  TestServer ts(/*workers=*/1, /*queue_capacity=*/1);

  std::thread holder([&ts] {
    svc::Client client = ts.client();
    const svc::Response resp = client.compile(slow_params());
    EXPECT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Distinct problems (different names -> different keys) so nobody can
  // join a flight: they must queue, and the queue holds one.
  constexpr int kClients = 4;
  std::atomic<int> ok{0}, overloaded{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i)
    threads.emplace_back([&ts, &ok, &overloaded, i] {
      svc::Client client = ts.client();
      const svc::Response resp =
          client.compile(quick_params("q" + std::to_string(i)));
      if (resp.status == svc::RespStatus::kOk) ++ok;
      if (resp.status == svc::RespStatus::kOverloaded) {
        ++overloaded;
        EXPECT_NE(resp.error.find("retry"), std::string::npos) << resp.error;
      }
    });
  for (std::thread& t : threads) t.join();
  holder.join();

  // Everyone got an answer; with a queue of one at least one was shed.
  EXPECT_EQ(ok + overloaded, kClients);
  EXPECT_GE(overloaded, 1);
  const svc::ServerStats s = ts.server->stats();
  EXPECT_EQ(s.shed, static_cast<std::uint64_t>(overloaded.load()));
  expect_accounting_invariant(s);
}

TEST(SvcClientTest, RetryEventuallySucceedsAfterOverload) {
  TestServer ts(/*workers=*/1, /*queue_capacity=*/1);
  std::thread holder([&ts] {
    svc::Client client = ts.client();
    EXPECT_EQ(client.compile(slow_params()).status, svc::RespStatus::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Fill the queue, then retry a shed request until the backlog clears.
  std::thread filler([&ts] {
    svc::Client client = ts.client();
    client.compile(quick_params("filler"));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  svc::ClientOptions opts;
  opts.max_retries = 20;
  opts.backoff_ms = 25;
  svc::Client client = ts.client(opts);
  svc::Request req;
  req.op = svc::Op::kCompile;
  req.compile = quick_params("retrier");
  const svc::Response resp = client.call_with_retry(std::move(req));
  EXPECT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
  holder.join();
  filler.join();
}

// --------------------------------------------------------------- deadlines

TEST(SvcServerTest, ExpiredDeadlineSkipsTheCompile) {
  TestServer ts(/*workers=*/1);
  std::thread holder([&ts] {
    svc::Client client = ts.client();
    EXPECT_EQ(client.compile(slow_params()).status, svc::RespStatus::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  svc::Client client = ts.client();
  const svc::Response resp =
      client.compile(quick_params("impatient"), /*deadline_ms=*/1);
  EXPECT_EQ(resp.status, svc::RespStatus::kTimeout);
  EXPECT_NE(resp.error.find("deadline"), std::string::npos) << resp.error;
  holder.join();

  const svc::ServerStats s = ts.server->stats();
  EXPECT_EQ(s.timed_out, 1u);
  EXPECT_EQ(s.compiles, 1u);  // only the holder compiled
  expect_accounting_invariant(s);
}

// ---------------------------------------------------------------- drain

TEST(SvcServerTest, SigtermDrainFinishesInFlightRequests) {
  TestServer ts(/*workers=*/1);
  svc::SignalDrain signals;
  std::thread serving([&ts, &signals] {
    ts.server->run_until(signals.fd());
  });

  // Put a heavy compile in flight, then a queued one behind it.
  std::atomic<bool> slow_ok{false}, queued_ok{false};
  std::thread in_flight([&ts, &slow_ok] {
    svc::Client client = ts.client();
    const svc::Response resp = client.compile(slow_params());
    slow_ok = resp.status == svc::RespStatus::kOk;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread queued([&ts, &queued_ok] {
    svc::Client client = ts.client();
    const svc::Response resp = client.compile(quick_params("queued"));
    queued_ok = resp.status == svc::RespStatus::kOk;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // SIGTERM mid-compile: the drain must answer both admitted requests.
  ASSERT_EQ(::raise(SIGTERM), 0);
  serving.join();
  in_flight.join();
  queued.join();

  EXPECT_TRUE(ts.server->draining());
  EXPECT_TRUE(slow_ok.load());
  EXPECT_TRUE(queued_ok.load());
  const svc::ServerStats s = ts.server->stats();
  EXPECT_EQ(s.queue_depth, 0u);  // nothing left behind
  expect_accounting_invariant(s);
}

TEST(SvcServerTest, ShutdownOpDrainsViaTheWire) {
  TestServer ts;
  std::thread serving([&ts] { ts.server->run_until(/*wake_fd=*/-1); });

  svc::Client client = ts.client();
  ASSERT_EQ(client.compile(quick_params()).status, svc::RespStatus::kOk);
  EXPECT_EQ(client.shutdown_server().status, svc::RespStatus::kOk);
  serving.join();  // the shutdown op wakes run_until, which drains

  EXPECT_TRUE(ts.server->draining());
  // Once draining, new compile connections are refused outright (the
  // listener is closed), which the client surfaces as a connect error.
  EXPECT_THROW(ts.client(), tilo::util::Error);
  expect_accounting_invariant(ts.server->stats());
}

TEST(SvcServerTest, CompileDuringDrainGetsShuttingDown) {
  TestServer ts(/*workers=*/1);
  // Hold an open connection from before the drain begins.
  svc::Fd fd = ts.raw_connect();

  std::thread holder([&ts] {
    svc::Client client = ts.client();
    EXPECT_EQ(client.compile(slow_params()).status, svc::RespStatus::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread draining([&ts] { ts.server->drain(); });
  // Give drain() a moment to flip the flag, then ask for new work on the
  // pre-existing connection: the reader answers "shutting_down".
  for (int i = 0; i < 100 && !ts.server->draining(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  svc::Request req;
  req.op = svc::Op::kCompile;
  req.id = 77;
  req.compile = quick_params("late");
  if (svc::write_frame(fd.get(), svc::request_to_json(req).dump())) {
    std::string payload;
    const svc::FrameStatus st = svc::read_frame(
        fd.get(), payload, svc::kDefaultMaxFrameBytes, 5000);
    if (st == svc::FrameStatus::kFrame) {
      const svc::Response resp = svc::response_from_wire(payload);
      EXPECT_EQ(resp.status, svc::RespStatus::kShuttingDown);
      EXPECT_EQ(resp.id, std::optional<i64>(77));
    }
    // kClosed is also acceptable: drain had already cut the reader loose.
  }
  holder.join();
  draining.join();
  expect_accounting_invariant(ts.server->stats());
}

// ------------------------------------------------------------- histogram

TEST(SvcHistogramTest, PercentileReadsBucketUpperEdges) {
  tilo::obs::LogHistogram hist;
  EXPECT_EQ(svc::histogram_percentile_ns(hist, 0.5), 0.0);  // empty
  for (int i = 0; i < 99; ++i) hist.add(1000);  // ~1 us
  hist.add(1'000'000'000);                      // one 1 s outlier
  const double p50 = svc::histogram_percentile_ns(hist, 0.50);
  const double p99 = svc::histogram_percentile_ns(hist, 0.99);
  const double p100 = svc::histogram_percentile_ns(hist, 1.0);
  EXPECT_GE(p50, 1000.0);
  EXPECT_LT(p50, 1'000'000.0);       // p50 stays near the cluster
  EXPECT_LE(p99, p100);
  EXPECT_GE(p100, 1'000'000'000.0);  // p100 covers the outlier's bucket
}

// ---------------------------------------------------- stats: new counters

TEST(SvcServerTest, StatsOpReportsQueueHighWaterAndCacheCounters) {
  TestServer ts(/*workers=*/1, /*queue_capacity=*/8);
  svc::Client client = ts.client();
  // Two identical compiles: one miss (the compile), then one cache hit.
  ASSERT_EQ(client.compile(quick_params()).status, svc::RespStatus::kOk);
  ASSERT_EQ(client.compile(quick_params()).status, svc::RespStatus::kOk);
  const svc::Response stats = client.stats();
  ASSERT_EQ(stats.status, svc::RespStatus::kOk) << stats.error;
  const Json s = Json::parse(stats.result);
  EXPECT_GE(s.at("cache_hits").as_integer("cache_hits"), 1);
  EXPECT_GE(s.at("cache_misses").as_integer("cache_misses"), 1);
  // Each compile passed through the queue, so the high-water mark is at
  // least 1 and never exceeds the configured capacity.
  EXPECT_GE(s.at("max_queue_depth").as_integer("max_queue_depth"), 1);
  EXPECT_LE(s.at("max_queue_depth").as_integer("max_queue_depth"), 8);
  EXPECT_EQ(s.at("queue_capacity").as_integer("queue_capacity"), 8);
  EXPECT_EQ(s.at("workers").as_integer("workers"), 1);
}

TEST(SvcServerTest, FleetOpsAreRefusedByACompileServer) {
  TestServer ts;
  svc::Client client = ts.client();
  for (const svc::Op op : {svc::Op::kRegister, svc::Op::kHeartbeat,
                           svc::Op::kDeregister, svc::Op::kUnit,
                           svc::Op::kQueue, svc::Op::kAcct}) {
    svc::Request req;
    req.op = op;
    req.fleet = Json::object();
    const svc::Response resp = client.call(std::move(req));
    EXPECT_EQ(resp.status, svc::RespStatus::kBadRequest)
        << svc::op_name(op);
    EXPECT_NE(resp.error.find("fleet controller"), std::string::npos)
        << resp.error;
  }
}

// ------------------------------------------------- client retry schedule

namespace {

/// A stub server that answers every well-formed request with "overloaded":
/// the worst polite server there is, for exercising the retry loop.
struct OverloadedStub {
  OverloadedStub() {
    static int counter = 0;
    addr = svc::Address::parse(
        "unix:" + ::testing::TempDir() + "svc_overload_" +
        std::to_string(::getpid()) + "_" + std::to_string(counter++) +
        ".sock");
    listen_fd = svc::listen_on(addr);
    thread = std::thread([this] {
      for (;;) {
        svc::Fd conn = svc::accept_on(listen_fd.get());
        if (!conn.valid()) return;  // listen socket closed: stop
        std::string payload;
        while (svc::read_frame(conn.get(), payload) ==
               svc::FrameStatus::kFrame) {
          const svc::Request req =
              svc::request_from_json(Json::parse(payload));
          svc::Response resp;
          resp.status = svc::RespStatus::kOverloaded;
          resp.id = req.id;
          resp.error = "stub: always overloaded";
          if (!svc::write_frame(conn.get(), svc::response_to_wire(resp)))
            break;
        }
      }
    });
  }
  ~OverloadedStub() {
    // shutdown wakes the blocked accept; reset only after the join (the
    // accept thread still reads the fd until then).
    ::shutdown(listen_fd.get(), SHUT_RDWR);
    thread.join();
    listen_fd.reset();
  }
  svc::Address addr;
  svc::Fd listen_fd;
  std::thread thread;
};

}  // namespace

TEST(SvcClientTest, RetryBackoffScheduleIsSeededReproducibleAndBounded) {
  OverloadedStub stub;
  svc::ClientOptions opts;
  opts.max_retries = 3;
  opts.backoff_ms = 40;
  opts.backoff_factor = 2.0;

  // Mirror the client's jitter stream with the library Rng under the same
  // seed: attempt k sleeps floor(backoff_ms * factor^k * (0.5 + u_k)) ms.
  // The schedule is a pure function of the seed — reproducible — and the
  // total is bounded by sum_k 1.5 * backoff_ms * factor^k.
  tilo::util::Rng mirror(opts.jitter_seed);
  i64 expected_total_ms = 0;
  double bound_ms = 0.0;
  double nominal = static_cast<double>(opts.backoff_ms);
  for (int k = 0; k < opts.max_retries; ++k) {
    expected_total_ms +=
        static_cast<i64>(nominal * (0.5 + mirror.uniform01()));
    bound_ms += 1.5 * nominal;
    nominal *= opts.backoff_factor;
  }

  for (int run = 0; run < 2; ++run) {  // same seed -> same schedule, twice
    svc::Client client = svc::Client::connect(stub.addr.str(), opts);
    svc::Request req;
    req.op = svc::Op::kPing;
    const auto t0 = std::chrono::steady_clock::now();
    const svc::Response resp = client.call_with_retry(std::move(req));
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(resp.status, svc::RespStatus::kOverloaded);
    EXPECT_GE(elapsed_ms, static_cast<double>(expected_total_ms))
        << "run " << run << ": slept less than the seeded schedule";
    // Generous slack for 4 round trips over a Unix socket.
    EXPECT_LT(elapsed_ms, bound_ms + 1000.0)
        << "run " << run << ": exceeded the backoff formula bound";
  }
}

// ------------------------------------------------- queue under contention

TEST(SvcQueueStressTest, MpmcShedsAreAccountedAndItemsPopExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  constexpr int kTotal = kProducers * kPerProducer;

  svc::BoundedQueue<int> queue(/*capacity=*/8);
  std::atomic<int> accepted{0};
  std::atomic<int> shed{0};
  std::atomic<int> popped{0};
  std::vector<std::atomic<int>> seen(kTotal);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (std::optional<int> item = queue.pop()) {
        // Exactly-once: no item may be popped twice.
        EXPECT_EQ(seen[static_cast<std::size_t>(*item)].fetch_add(1), 0);
        popped.fetch_add(1);
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int id = p * kPerProducer + i;
        if (queue.try_push(id))
          accepted.fetch_add(1);
        else
          shed.fetch_add(1);  // try_push never blocks: shed is explicit
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.close();
  for (std::thread& t : consumers) t.join();

  // Every attempt is accounted for exactly once, as accepted or shed.
  EXPECT_EQ(accepted.load() + shed.load(), kTotal);
  EXPECT_EQ(popped.load(), accepted.load());
  // Spinning producers against a capacity-8 queue must shed; if this ever
  // reads 0 the queue stopped enforcing its bound.
  EXPECT_GT(shed.load(), 0);
  // A closed queue refuses new work explicitly.
  EXPECT_FALSE(queue.try_push(kTotal));
  int filed = 0;
  for (const auto& s : seen) filed += s.load();
  EXPECT_EQ(filed, accepted.load());
}
