// Unit tests for tilo::loop — dependence sets, loop nests, kernels and the
// sequential reference executor.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "tilo/loopnest/deps.hpp"
#include "tilo/loopnest/kernel.hpp"
#include "tilo/loopnest/nest.hpp"
#include "tilo/loopnest/reference.hpp"
#include "tilo/loopnest/workloads.hpp"

using namespace tilo;
using lat::Box;
using lat::Vec;
using loop::DependenceSet;
using loop::LoopNest;
using util::i64;

TEST(DependenceSetTest, RejectsInvalidVectors) {
  EXPECT_THROW(DependenceSet({Vec{0, 0}}), util::Error);        // zero
  EXPECT_THROW(DependenceSet({Vec{-1, 2}}), util::Error);       // lex-negative
  EXPECT_THROW(DependenceSet({Vec{1, 0}, Vec{1}}), util::Error);  // ragged
  EXPECT_NO_THROW(DependenceSet({Vec{0, 1}, Vec{1, -3}}));
}

TEST(DependenceSetTest, MatrixUsesColumnsForDependences) {
  const DependenceSet d({Vec{1, 1}, Vec{1, 0}, Vec{0, 1}});
  const lat::Mat m = d.as_matrix();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.col(0), (Vec{1, 1}));
}

TEST(DependenceSetTest, MaxComponentAndTouch) {
  const DependenceSet d({Vec{1, 0, 2}, Vec{0, 1, 0}});
  EXPECT_EQ(d.max_component(0), 1);
  EXPECT_EQ(d.max_component(2), 2);
  EXPECT_TRUE(d.touches_dim(1));
  EXPECT_TRUE(d.is_nonneg());
  const DependenceSet neg({Vec{1, -1}});
  EXPECT_FALSE(neg.is_nonneg());
  EXPECT_TRUE(neg.touches_dim(1));
}

TEST(LoopNestTest, ValidatesDimensions) {
  EXPECT_THROW(LoopNest("bad", Box::from_extents(Vec{4, 4}),
                        DependenceSet({Vec{1, 0, 0}})),
               util::Error);
  const LoopNest ok("ok", Box::from_extents(Vec{4, 4}),
                    DependenceSet({Vec{1, 0}}));
  EXPECT_EQ(ok.iterations(), 16);
  EXPECT_FALSE(ok.has_kernel());
  EXPECT_THROW(ok.kernel(), util::Error);
}

TEST(LoopNestTest, WithKernelAttachesBody) {
  const LoopNest base("k", Box::from_extents(Vec{3, 3}),
                      DependenceSet({Vec{0, 1}}));
  const LoopNest with = base.with_kernel(std::make_shared<loop::SumKernel>());
  EXPECT_TRUE(with.has_kernel());
  EXPECT_EQ(with.domain(), base.domain());
}

TEST(KernelTest, SqrtSumMatchesDefinition) {
  loop::SqrtSumKernel k;
  const double v = k.apply(Vec{0, 0}, {4.0, 9.0, 16.0});
  EXPECT_DOUBLE_EQ(v, 2.0 + 3.0 + 4.0);
}

TEST(KernelTest, WeightedKernelChecksArity) {
  loop::WeightedKernel k({0.5, 0.25});
  EXPECT_NO_THROW(k.apply(Vec{0}, {1.0, 2.0}));
  EXPECT_THROW(k.apply(Vec{0}, {1.0}), util::Error);
}

TEST(KernelTest, BoundaryIsDeterministic) {
  loop::SqrtSumKernel k;
  EXPECT_DOUBLE_EQ(k.boundary(Vec{-1, 3, 2}), k.boundary(Vec{-1, 3, 2}));
}

TEST(ReferenceTest, OneDimensionalRecurrence) {
  // A(i) = 0.5 * A(i-1), A(-1) = boundary(-1).
  auto kernel = std::make_shared<loop::SumKernel>(0.5);
  const LoopNest nest("chain", Box::from_extents(Vec{5}),
                      DependenceSet({Vec{1}}), kernel);
  const loop::DenseField f = loop::run_sequential(nest);
  double expect = kernel->boundary(Vec{-1});
  for (i64 i = 0; i < 5; ++i) {
    expect *= 0.5;
    EXPECT_DOUBLE_EQ(f.at(Vec{i}), expect);
  }
}

TEST(ReferenceTest, TwoDimensionalHandComputed) {
  // A(i,j) = A(i-1,j) + A(i,j-1), scale 1.  With constant boundary value b,
  // A(i,j) = C(i+j+2 choose i+1)-ish growth; check the corner cells by hand.
  struct ConstBoundary final : loop::Kernel {
    double boundary(const Vec&) const override { return 1.0; }
    double apply(const Vec&,
                 const std::vector<double>& in) const override {
      return in[0] + in[1];
    }
    std::string statement() const override { return "sum"; }
  };
  const LoopNest nest("pascal", Box::from_extents(Vec{3, 3}),
                      DependenceSet({Vec{1, 0}, Vec{0, 1}}),
                      std::make_shared<ConstBoundary>());
  const loop::DenseField f = loop::run_sequential(nest);
  EXPECT_DOUBLE_EQ(f.at(Vec{0, 0}), 2.0);
  EXPECT_DOUBLE_EQ(f.at(Vec{0, 1}), 3.0);
  EXPECT_DOUBLE_EQ(f.at(Vec{1, 0}), 3.0);
  EXPECT_DOUBLE_EQ(f.at(Vec{1, 1}), 6.0);
  EXPECT_DOUBLE_EQ(f.at(Vec{2, 2}), 20.0);
}

TEST(ReferenceTest, MaxAbsDiffDetectsDifference) {
  const LoopNest nest = loop::stencil3d_nest(3, 3, 3);
  loop::DenseField a = loop::run_sequential(nest);
  loop::DenseField b = a;
  EXPECT_DOUBLE_EQ(loop::max_abs_diff(a, b), 0.0);
  b.values[5] += 0.25;
  EXPECT_DOUBLE_EQ(loop::max_abs_diff(a, b), 0.25);
}

TEST(WorkloadsTest, PaperSpacesHaveDocumentedShapes) {
  EXPECT_EQ(loop::paper_space_i().domain().extents(), (Vec{16, 16, 16384}));
  EXPECT_EQ(loop::paper_space_ii().domain().extents(), (Vec{16, 16, 32768}));
  EXPECT_EQ(loop::paper_space_iii().domain().extents(), (Vec{32, 32, 4096}));
  EXPECT_EQ(loop::paper_space_i().deps().size(), 3u);
}

TEST(WorkloadsTest, Example1MatchesPaper) {
  const LoopNest e1 = loop::example1_nest();
  EXPECT_EQ(e1.domain().extents(), (Vec{10000, 1000}));
  EXPECT_EQ(e1.deps().size(), 3u);
  EXPECT_TRUE(e1.has_kernel());
  const LoopNest small = loop::example1_nest(100);
  EXPECT_EQ(small.domain().extents(), (Vec{100, 10}));
}

TEST(WorkloadsTest, RandomNestIsValidAndDeterministic) {
  util::Rng rng1(5);
  util::Rng rng2(5);
  loop::RandomNestOptions opts;
  const LoopNest a = loop::random_nest(rng1, opts);
  const LoopNest b = loop::random_nest(rng2, opts);
  EXPECT_EQ(a.domain(), b.domain());
  EXPECT_EQ(a.deps().size(), b.deps().size());
  for (std::size_t i = 0; i < a.deps().size(); ++i)
    EXPECT_EQ(a.deps()[i], b.deps()[i]);
  // And the functional results agree too.
  EXPECT_DOUBLE_EQ(
      loop::max_abs_diff(loop::run_sequential(a), loop::run_sequential(b)),
      0.0);
}

TEST(WorkloadsTest, RandomNestRespectsOptions) {
  util::Rng rng(17);
  loop::RandomNestOptions opts;
  opts.dims = 2;
  opts.num_deps = 3;  // all three distinct nonneg 0/1 vectors exist
  opts.max_dep_component = 1;
  opts.nonneg_deps = true;
  const LoopNest nest = loop::random_nest(rng, opts);
  EXPECT_EQ(nest.dims(), 2u);
  EXPECT_EQ(nest.deps().size(), 3u);
  for (const Vec& d : nest.deps()) {
    EXPECT_TRUE(d.is_nonneg());
    EXPECT_LE(d.at(0), 1);
    EXPECT_LE(d.at(1), 1);
  }
}

TEST(WorkloadsTest, ImpossibleDependenceCountThrows) {
  // Only 3 distinct nonzero lex-positive 0/1 vectors exist in 2-D; asking
  // for 4 must fail loudly instead of spinning forever.
  util::Rng rng(17);
  loop::RandomNestOptions opts;
  opts.dims = 2;
  opts.num_deps = 4;
  opts.max_dep_component = 1;
  opts.nonneg_deps = true;
  EXPECT_THROW(loop::random_nest(rng, opts), util::Error);
}
