// Unit tests for tilo::sched — linear schedules, the paper's two tile
// schedules, processor mapping, and the UET-UCT optimality cross-check.
#include <gtest/gtest.h>

#include "tilo/loopnest/workloads.hpp"
#include "tilo/sched/linear.hpp"
#include "tilo/sched/mapping.hpp"
#include "tilo/sched/tiled.hpp"
#include "tilo/sched/uetuct.hpp"
#include "tilo/tiling/tilespace.hpp"

using namespace tilo;
using lat::Box;
using lat::Vec;
using loop::DependenceSet;
using sched::LinearSchedule;
using sched::ProcessorMapping;
using sched::ScheduleKind;
using util::i64;

// ------------------------------------------------------ LinearSchedule ----

TEST(LinearScheduleTest, TimeAndLengthForUnitPi) {
  const Box space(Vec{0, 0}, Vec{3, 4});
  const DependenceSet deps({Vec{1, 0}, Vec{0, 1}});
  const LinearSchedule s(Vec{1, 1}, space, deps);
  EXPECT_EQ(s.disp(), 1);
  EXPECT_EQ(s.time_of(Vec{0, 0}), 0);
  EXPECT_EQ(s.time_of(Vec{3, 4}), 7);
  EXPECT_EQ(s.length(), 8);
}

TEST(LinearScheduleTest, NonzeroOriginIsNormalized) {
  const Box space(Vec{2, 3}, Vec{5, 6});
  const LinearSchedule s(Vec{1, 1}, space, DependenceSet({Vec{0, 1}}));
  EXPECT_EQ(s.time_of(Vec{2, 3}), 0);  // first point runs at step 0
  EXPECT_EQ(s.length(), 7);
}

TEST(LinearScheduleTest, DispRescalesTime) {
  // All dependencies advance Π by >= 2 -> two hyperplanes merge per step.
  const Box space(Vec{0}, Vec{9});
  const LinearSchedule s(Vec{2}, space, DependenceSet({Vec{1}}));
  EXPECT_EQ(s.disp(), 2);
  EXPECT_EQ(s.time_of(Vec{9}), 9);
  EXPECT_EQ(s.length(), 10);
}

TEST(LinearScheduleTest, CausalityViolationThrows) {
  const Box space(Vec{0, 0}, Vec{3, 3});
  EXPECT_THROW(LinearSchedule(Vec{1, 0}, space, DependenceSet({Vec{0, 1}})),
               util::Error);
  EXPECT_THROW(LinearSchedule(Vec{1, -1}, space, DependenceSet({Vec{1, 1}})),
               util::Error);
}

TEST(LinearScheduleTest, SatisfiesGap) {
  EXPECT_TRUE(LinearSchedule::satisfies_gap(Vec{2, 1},
                                            {Vec{1, 0}, Vec{1, 1}}, 2));
  EXPECT_FALSE(LinearSchedule::satisfies_gap(Vec{2, 1},
                                             {Vec{0, 1}}, 2));
}

// ------------------------------------------------------- tile schedule ----

TEST(TiledScheduleTest, PiVectors) {
  EXPECT_EQ(sched::nonoverlap_pi(3), (Vec{1, 1, 1}));
  EXPECT_EQ(sched::overlap_pi(3, 2), (Vec{2, 2, 1}));
  EXPECT_EQ(sched::overlap_pi(4, 0), (Vec{1, 2, 2, 2}));
}

TEST(TiledScheduleTest, ChooseMappedDimPicksLargest) {
  EXPECT_EQ(sched::choose_mapped_dim(Box::from_extents(Vec{4, 4, 64})), 2u);
  EXPECT_EQ(sched::choose_mapped_dim(Box::from_extents(Vec{9, 4, 4})), 0u);
  // Ties resolve to the lowest index.
  EXPECT_EQ(sched::choose_mapped_dim(Box::from_extents(Vec{4, 4, 4})), 0u);
}

TEST(TiledScheduleTest, LengthsMatchPaperClosedForms) {
  // Example 1: tiled space 1000 x 100 -> last tile (999, 99).
  EXPECT_EQ(sched::nonoverlap_schedule_length(Vec{999, 99}), 1099);
  // Example 3 (overlap, mapped along dim 0): 999 + 2*99 + 1 = 1198.
  EXPECT_EQ(sched::overlap_schedule_length(Vec{999, 99}, 0), 1198);
  // Experiment i: P = 2*3 + 2*3 + 36 + 1 with V = 444 -> 4x4x37 tiles.
  EXPECT_EQ(sched::overlap_schedule_length(Vec{3, 3, 36}, 2), 49);
}

TEST(TiledScheduleTest, MakeScheduleValidatesOverlapGap) {
  const loop::LoopNest nest = loop::stencil3d_nest(8, 8, 32);
  const tile::TiledSpace space(nest, tile::RectTiling(Vec{4, 4, 8}));
  const LinearSchedule over =
      sched::make_tile_schedule(space, ScheduleKind::kOverlap, 2);
  EXPECT_EQ(over.pi(), (Vec{2, 2, 1}));
  // Communicating tile deps (1,0,0)/(0,1,0) get gap 2; the local (0,0,1)
  // advances by 1 — that is exactly the paper's pipelined hyperplane.
  EXPECT_EQ(over.pi().dot(Vec{1, 0, 0}), 2);
  EXPECT_EQ(over.pi().dot(Vec{0, 0, 1}), 1);
  const LinearSchedule non =
      sched::make_tile_schedule(space, ScheduleKind::kNonOverlap, 2);
  EXPECT_EQ(non.length(), 1 + 1 + 3 + 1);
  // overlap length = 2*1 + 2*1 + 1*3 + 1 = 8; matches the closed form.
  EXPECT_EQ(over.length(), 8);
  EXPECT_EQ(over.length(),
            sched::overlap_schedule_length(space.last_tile(), 2));
}

TEST(TiledScheduleTest, ScheduleLengthMatchesExhaustiveMax) {
  const loop::LoopNest nest = loop::stencil3d_nest(9, 6, 20);
  const tile::TiledSpace space(nest, tile::RectTiling(Vec{3, 3, 5}));
  for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
    const LinearSchedule s = sched::make_tile_schedule(space, kind, 2);
    i64 max_t = 0;
    space.for_each_tile(
        [&](const Vec& t) { max_t = std::max(max_t, s.time_of(t)); });
    EXPECT_EQ(s.length(), max_t + 1);
  }
}

// ------------------------------------------------------------ mapping ----

TEST(MappingTest, OneColumnPerProc) {
  const Box ts = Box::from_extents(Vec{4, 4, 16});
  const ProcessorMapping m = ProcessorMapping::one_column_per_proc(ts, 2);
  EXPECT_EQ(m.num_ranks(), 16);
  EXPECT_EQ(m.proc_of_tile(Vec{1, 2, 9}), (Vec{1, 2, 0}));
  EXPECT_EQ(m.rank_of_tile(Vec{1, 2, 9}), m.rank_of_tile(Vec{1, 2, 0}));
  EXPECT_NE(m.rank_of_tile(Vec{1, 2, 9}), m.rank_of_tile(Vec{2, 1, 9}));
}

TEST(MappingTest, RankRoundTrip) {
  const Box ts = Box::from_extents(Vec{3, 5, 7});
  const ProcessorMapping m = ProcessorMapping::one_column_per_proc(ts, 2);
  for (i64 r = 0; r < m.num_ranks(); ++r)
    EXPECT_EQ(m.rank_of_proc(m.proc_of_rank(r)), r);
}

TEST(MappingTest, BlockDistributionGroupsColumns) {
  // 8 columns in dim 0, 2 processors -> blocks of 4 columns.
  const Box ts = Box::from_extents(Vec{8, 16});
  const ProcessorMapping m(ts, 1, Vec{2, 1});
  EXPECT_EQ(m.num_ranks(), 2);
  EXPECT_EQ(m.rank_of_tile(Vec{0, 3}), 0);
  EXPECT_EQ(m.rank_of_tile(Vec{3, 3}), 0);
  EXPECT_EQ(m.rank_of_tile(Vec{4, 3}), 1);
  EXPECT_EQ(m.columns_of_rank(0).size(), 4u);
  EXPECT_EQ(m.columns_of_rank(1).size(), 4u);
}

TEST(MappingTest, TilesOfRankPartitionTheSpace) {
  const Box ts = Box::from_extents(Vec{5, 6, 7});
  const ProcessorMapping m(ts, 2, Vec{2, 3, 1});
  i64 total = 0;
  for (i64 r = 0; r < m.num_ranks(); ++r)
    total += m.tiles_of_rank(r).volume();
  EXPECT_EQ(total, ts.volume());
  // Every tile's owner contains it.
  ts.for_each_point([&](const Vec& t) {
    EXPECT_TRUE(m.tiles_of_rank(m.rank_of_tile(t)).contains(t));
  });
}

TEST(MappingTest, InvalidConfigurationsThrow) {
  const Box ts = Box::from_extents(Vec{4, 4});
  EXPECT_THROW(ProcessorMapping(ts, 0, Vec{2, 2}), util::Error);  // mapped != 1
  EXPECT_THROW(ProcessorMapping(ts, 0, Vec{1, 5}), util::Error);  // too many
  EXPECT_THROW(ProcessorMapping(ts, 5, Vec{1, 1}), util::Error);  // bad dim
}

TEST(MappingTest, ColumnsAreLexOrdered) {
  const Box ts = Box::from_extents(Vec{2, 2, 4});
  const ProcessorMapping m(ts, 2, Vec{1, 1, 1});  // single rank owns all
  const auto cols = m.columns_of_rank(0);
  ASSERT_EQ(cols.size(), 4u);
  EXPECT_EQ(cols[0], (Vec{0, 0, 0}));
  EXPECT_EQ(cols[1], (Vec{0, 1, 0}));
  EXPECT_EQ(cols[2], (Vec{1, 0, 0}));
  EXPECT_EQ(cols[3], (Vec{1, 1, 0}));
}

// ------------------------------------------------------------- UET-UCT ----

TEST(UetUctTest, ClosedFormBasics) {
  EXPECT_EQ(sched::uetuct_makespan(Vec{5}, 0), 6);
  EXPECT_EQ(sched::uetuct_makespan(Vec{3, 4}, 1), 2 * 3 + 4 + 1);
  EXPECT_EQ(sched::uetuct_optimal_makespan(Vec{3, 4}), 3 * 2 + 4 + 1);
  // Mapping along the largest dimension is optimal.
  EXPECT_LT(sched::uetuct_makespan(Vec{3, 9}, 1),
            sched::uetuct_makespan(Vec{3, 9}, 0));
}

TEST(UetUctTest, DpMatchesClosedFormOnSmallGrids) {
  for (i64 a = 0; a <= 4; ++a)
    for (i64 b = 0; b <= 4; ++b)
      for (std::size_t md = 0; md < 2; ++md)
        EXPECT_EQ(sched::uetuct_makespan_dp(Vec{a, b}, md),
                  sched::uetuct_makespan(Vec{a, b}, md))
            << "grid (" << a << "," << b << ") mapped " << md;
}

TEST(UetUctTest, DpMatchesClosedFormIn3D) {
  for (i64 a = 0; a <= 3; ++a)
    for (i64 b = 0; b <= 3; ++b)
      for (i64 c = 0; c <= 3; ++c)
        for (std::size_t md = 0; md < 3; ++md)
          EXPECT_EQ(sched::uetuct_makespan_dp(Vec{a, b, c}, md),
                    sched::uetuct_makespan(Vec{a, b, c}, md));
}

TEST(UetUctTest, OverlapScheduleLengthEqualsUetUctMakespan) {
  // The paper's overlapping tile schedule is the UET-UCT optimum: the
  // closed forms must coincide.
  const Vec u{3, 3, 36};
  for (std::size_t md = 0; md < 3; ++md)
    EXPECT_EQ(sched::overlap_schedule_length(u, md),
              sched::uetuct_makespan(u, md));
}
