// Tests for the loop-nest front end: grammar, dependence extraction,
// executable kernels, and end-to-end runs of parsed programs through both
// distributed executors.
#include <gtest/gtest.h>

#include "tilo/exec/run.hpp"
#include "tilo/loopnest/parse.hpp"
#include "tilo/loopnest/reference.hpp"
#include "tilo/loopnest/workloads.hpp"
#include "tilo/util/rng.hpp"

using namespace tilo;
using lat::Vec;
using loop::LoopNest;
using loop::parse_nest;

namespace {

const char* kPaperExample1 = R"(
# the paper's Example 1 (scaled down)
FOR i1 = 0 TO 99
  FOR i2 = 0 TO 49
    A(i1, i2) = 0.25 * (A(i1-1, i2-1) + A(i1-1, i2) + A(i1, i2-1))
  ENDFOR
ENDFOR
)";

const char* kPaperStencil3d = R"(
FOR i = 0 TO 7
  FOR j = 0 TO 7
    FOR k = 0 TO 31
      A(i, j, k) = sqrt(A(i-1, j, k)) + sqrt(A(i, j-1, k)) + sqrt(A(i, j, k-1))
    ENDFOR
  ENDFOR
ENDFOR
)";

}  // namespace

TEST(ParseTest, Example1StructureExtracted) {
  const LoopNest nest = parse_nest(kPaperExample1);
  EXPECT_EQ(nest.name(), "A");
  EXPECT_EQ(nest.domain().extents(), (Vec{100, 50}));
  ASSERT_EQ(nest.deps().size(), 3u);
  EXPECT_EQ(nest.deps()[0], (Vec{1, 1}));
  EXPECT_EQ(nest.deps()[1], (Vec{1, 0}));
  EXPECT_EQ(nest.deps()[2], (Vec{0, 1}));
  EXPECT_TRUE(nest.has_kernel());
}

TEST(ParseTest, KernelEvaluatesExpression) {
  const LoopNest nest = parse_nest(kPaperExample1);
  // 0.25 * (a + b + c) with inputs in dependence order (1,1),(1,0),(0,1).
  EXPECT_DOUBLE_EQ(nest.kernel().apply(Vec{5, 5}, {1.0, 2.0, 3.0}), 1.5);
}

TEST(ParseTest, SqrtStencilMatchesBuiltin) {
  const LoopNest nest = parse_nest(kPaperStencil3d);
  ASSERT_EQ(nest.deps().size(), 3u);
  EXPECT_DOUBLE_EQ(nest.kernel().apply(Vec{0, 0, 0}, {4.0, 9.0, 16.0}),
                   2.0 + 3.0 + 4.0);
}

TEST(ParseTest, BoundaryValueOption) {
  loop::ParseOptions opts;
  opts.boundary_value = 7.5;
  const LoopNest nest = parse_nest(kPaperExample1, opts);
  EXPECT_DOUBLE_EQ(nest.kernel().boundary(Vec{-1, 0}), 7.5);
}

TEST(ParseTest, NegativeBoundsAndOffsets) {
  const LoopNest nest = parse_nest(
      "FOR i = -5 TO 5\n  FOR j = 0 TO 3\n    B(i, j) = B(i-2, j+1)\n"
      "  ENDFOR\nENDFOR\n");
  EXPECT_EQ(nest.domain().lo(), (Vec{-5, 0}));
  EXPECT_EQ(nest.deps()[0], (Vec{2, -1}));  // j+1 reads from the left
}

TEST(ParseTest, DuplicateReadsShareOneDependence) {
  const LoopNest nest = parse_nest(
      "FOR i = 0 TO 9\n  A(i) = A(i-1) * A(i-1) + A(i-1)\nENDFOR\n");
  EXPECT_EQ(nest.deps().size(), 1u);
  // x*x + x at x = 3.
  EXPECT_DOUBLE_EQ(nest.kernel().apply(Vec{1}, {3.0}), 12.0);
}

TEST(ParseTest, OperatorPrecedenceAndUnaryMinus) {
  const LoopNest nest = parse_nest(
      "FOR i = 0 TO 9\n  A(i) = 2 + 3 * A(i-1) - -1\nENDFOR\n");
  EXPECT_DOUBLE_EQ(nest.kernel().apply(Vec{1}, {4.0}), 2 + 12 + 1);
}

TEST(ParseTest, SyntaxErrorsCarryLineNumbers) {
  try {
    parse_nest("FOR i = 0 TO 9\n  A(i) = A(i-1) +\nENDFOR\n");
    FAIL() << "expected parse error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(ParseTest, ModelViolationsRejected) {
  // Self-read.
  EXPECT_THROW(parse_nest("FOR i = 0 TO 9\n A(i) = A(i)\nENDFOR\n"),
               util::Error);
  // Anti-dependence (reads a future value).
  EXPECT_THROW(parse_nest("FOR i = 0 TO 9\n A(i) = A(i+1)\nENDFOR\n"),
               util::Error);
  // Wrong index variable order.
  EXPECT_THROW(
      parse_nest("FOR i = 0 TO 9\nFOR j = 0 TO 9\n A(j, i) = A(i-1, j)\n"
                 "ENDFOR\nENDFOR\n"),
      util::Error);
  // Two different arrays.
  EXPECT_THROW(parse_nest("FOR i = 0 TO 9\n A(i) = B(i-1)\nENDFOR\n"),
               util::Error);
  // Empty range.
  EXPECT_THROW(parse_nest("FOR i = 5 TO 2\n A(i) = A(i-1)\nENDFOR\n"),
               util::Error);
  // Statement with no dependencies.
  EXPECT_THROW(parse_nest("FOR i = 0 TO 9\n A(i) = 3\nENDFOR\n"),
               util::Error);
  // Missing ENDFOR.
  EXPECT_THROW(parse_nest("FOR i = 0 TO 9\n A(i) = A(i-1)\n"), util::Error);
  // Trailing garbage.
  EXPECT_THROW(
      parse_nest("FOR i = 0 TO 9\n A(i) = A(i-1)\nENDFOR\nENDFOR\n"),
      util::Error);
  // Multiple statements.
  EXPECT_THROW(
      parse_nest("FOR i = 0 TO 9\n A(i) = A(i-1)\n A(i) = A(i-2)\n"
                 "ENDFOR\n"),
      util::Error);
}

TEST(ParseTest, CaseInsensitiveKeywords) {
  EXPECT_NO_THROW(parse_nest(
      "for i = 0 to 9\n A(i) = Sqrt(A(i-1))\nendfor\n"));
}

TEST(ParseTest, ParsedProgramRunsSequentially) {
  const LoopNest nest = parse_nest(kPaperExample1);
  const loop::DenseField f = loop::run_sequential(nest);
  // Hand-compute the first cells with boundary value 1:
  // A(0,0) = 0.25*(1+1+1) = 0.75
  // A(0,1) = 0.25*(1+1+0.75) = 0.6875
  EXPECT_DOUBLE_EQ(f.at(Vec{0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(f.at(Vec{0, 1}), 0.6875);
}

TEST(RoundTripTest, ParsedNestSerializesAndReparses) {
  const LoopNest a = parse_nest(kPaperExample1);
  const std::string text = loop::to_source(a);
  const LoopNest b = parse_nest(text);
  // Structure survives.
  EXPECT_EQ(b.domain(), a.domain());
  ASSERT_EQ(b.deps().size(), a.deps().size());
  for (std::size_t i = 0; i < a.deps().size(); ++i)
    EXPECT_EQ(b.deps()[i], a.deps()[i]);
  // Values survive (same constant boundary on both sides).
  EXPECT_DOUBLE_EQ(
      loop::max_abs_diff(loop::run_sequential(a), loop::run_sequential(b)),
      0.0);
  // And the serialization is a fixed point.
  EXPECT_EQ(loop::to_source(b), text);
}

TEST(RoundTripTest, ExpressionOperatorsSurvive) {
  const LoopNest a = parse_nest(
      "FOR i = 0 TO 19\n"
      "  A(i) = 2 * A(i-1) - A(i-2) / 4 + abs(A(i-3)) + sqrt(A(i-1))\n"
      "ENDFOR\n");
  const LoopNest b = parse_nest(loop::to_source(a));
  EXPECT_DOUBLE_EQ(
      loop::max_abs_diff(loop::run_sequential(a), loop::run_sequential(b)),
      0.0);
}

TEST(RoundTripTest, BuiltinSqrtSumSerializesStructure) {
  // Built-in kernels serialize; values differ only through their
  // point-dependent boundary (the grammar's boundary is a constant).
  const LoopNest nest = loop::stencil3d_nest(4, 4, 8);
  const std::string text = loop::to_source(nest);
  EXPECT_NE(text.find("sqrt(stencil3d(i1-1, i2, i3))"), std::string::npos)
      << text;
  const LoopNest back = parse_nest(text);
  EXPECT_EQ(back.domain(), nest.domain());
  EXPECT_EQ(back.deps().size(), nest.deps().size());
}

TEST(RoundTripTest, NonSerializableKernelThrows) {
  const LoopNest nest(
      "W", lat::Box::from_extents(Vec{8}),
      loop::DependenceSet({Vec{1}}),
      std::make_shared<loop::WeightedKernel>(std::vector<double>{0.5}));
  EXPECT_THROW(loop::to_source(nest), util::Error);
}

TEST(ParseFuzzTest, RandomTokenSoupNeverCrashes) {
  // The parser must reject arbitrary garbage with util::Error — never
  // crash, hang or accept it silently.
  const char* vocab[] = {"FOR", "TO", "ENDFOR", "A", "i", "(", ")", ",",
                         "=", "+", "-", "*", "/", "0", "7", "sqrt", "\n"};
  util::Rng rng(20260706);
  for (int iter = 0; iter < 300; ++iter) {
    std::string source;
    const int len = static_cast<int>(rng.uniform(1, 40));
    for (int i = 0; i < len; ++i) {
      source += vocab[rng.uniform(0, std::size(vocab) - 1)];
      source += ' ';
    }
    try {
      const LoopNest nest = parse_nest(source);
      // Acceptance is fine too — it must then be a valid nest.
      EXPECT_GE(nest.dims(), 1u);
      EXPECT_GE(nest.deps().size(), 1u);
    } catch (const util::Error&) {
      // expected for almost every draw
    }
  }
}

TEST(ParseFuzzTest, TruncationsOfAValidProgramAllThrow) {
  const std::string program =
      "FOR i = 0 TO 9\n FOR j = 0 TO 9\n"
      "  A(i, j) = 0.5 * A(i-1, j) + sqrt(A(i, j-1))\n ENDFOR\nENDFOR\n";
  for (std::size_t cut = 1; cut + 1 < program.size(); cut += 3) {
    const std::string truncated = program.substr(0, cut);
    EXPECT_THROW(parse_nest(truncated), util::Error) << truncated;
  }
}

TEST(ParseTest, ParsedProgramRunsDistributedOnBothSchedules) {
  const LoopNest nest = parse_nest(kPaperStencil3d);
  const mach::MachineParams m = mach::MachineParams::paper_cluster();
  for (auto kind : {sched::ScheduleKind::kNonOverlap,
                    sched::ScheduleKind::kOverlap}) {
    const exec::TilePlan plan =
        exec::make_plan(nest, tile::RectTiling(Vec{4, 4, 8}), kind);
    EXPECT_DOUBLE_EQ(exec::run_and_validate(nest, plan, m), 0.0);
  }
}
