// Tests for skewed views: executing wavefront (negative-component)
// dependence sets through the rectangular tiling machinery by unimodular
// skewing — sequential equivalence at image points, distributed execution
// on both schedules, and the full skew pipeline on random nests.
#include <gtest/gtest.h>

#include "tilo/exec/run.hpp"
#include "tilo/loopnest/skewview.hpp"
#include "tilo/loopnest/workloads.hpp"
#include "tilo/tiling/skew.hpp"
#include "tilo/util/rng.hpp"

using namespace tilo;
using lat::Box;
using lat::Mat;
using lat::Vec;
using loop::DependenceSet;
using loop::LoopNest;
using sched::ScheduleKind;
using util::i64;

namespace {

mach::MachineParams tiny_params() {
  mach::MachineParams p;
  p.t_c = 1e-6;
  p.t_t = 0.02e-6;
  p.bytes_per_element = 8;
  p.wire_latency = 1e-6;
  p.fill_mpi_buffer = mach::AffineCost{3e-6, 0.0};
  p.fill_kernel_buffer = mach::AffineCost{3e-6, 0.0};
  return p;
}

/// A wavefront (SOR-like) nest: deps {(1,-1), (1,0), (1,1)}.
LoopNest wavefront_nest(i64 n0, i64 n1) {
  return LoopNest("wavefront", Box::from_extents(Vec{n0, n1}),
                  DependenceSet({Vec{1, -1}, Vec{1, 0}, Vec{1, 1}}),
                  std::make_shared<loop::SumKernel>(0.3));
}

}  // namespace

TEST(SkewViewTest, RectangularTilingRejectsWavefront) {
  const LoopNest nest = wavefront_nest(12, 12);
  EXPECT_THROW(tile::TiledSpace(nest, tile::RectTiling(Vec{4, 4})),
               util::Error);
}

TEST(SkewViewTest, SkewedDepsAreNonnegative) {
  const LoopNest nest = wavefront_nest(12, 12);
  const auto skew = tile::find_legal_skew(nest.deps());
  ASSERT_TRUE(skew.has_value());
  const LoopNest view = loop::make_skewed_nest(nest, *skew);
  EXPECT_TRUE(view.deps().is_nonneg());
  EXPECT_EQ(view.deps().size(), nest.deps().size());
}

TEST(SkewViewTest, SequentialValuesMatchAtImagePoints) {
  const LoopNest nest = wavefront_nest(10, 8);
  const auto skew = tile::find_legal_skew(nest.deps());
  ASSERT_TRUE(skew.has_value());
  const LoopNest view = loop::make_skewed_nest(nest, *skew);

  const loop::DenseField direct = loop::run_sequential(nest);
  const loop::DenseField skewed = loop::run_sequential(view);
  const loop::DenseField mapped =
      loop::unskew_field(skewed, *skew, nest.domain());
  EXPECT_DOUBLE_EQ(loop::max_abs_diff(direct, mapped), 0.0);
}

TEST(SkewViewTest, DistributedWavefrontBothSchedules) {
  const LoopNest nest = wavefront_nest(16, 10);
  const auto skew = tile::find_legal_skew(nest.deps());
  ASSERT_TRUE(skew.has_value());
  const LoopNest view = loop::make_skewed_nest(nest, *skew);

  // Tile the skewed space: sides must exceed the skewed dep components.
  Vec sides(2);
  for (std::size_t d = 0; d < 2; ++d)
    sides[d] = view.deps().max_component(d) + 2;

  for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
    const exec::TilePlan plan =
        exec::make_plan(view, tile::RectTiling(sides), kind);
    exec::RunOptions opts;
    opts.functional = true;
    const exec::RunResult run = exec::run_plan(view, plan, tiny_params(),
                                               opts);
    // The distributed skewed result, mapped back, equals the direct
    // sequential execution of the original wavefront nest.
    const loop::DenseField mapped =
        loop::unskew_field(*run.field, *skew, nest.domain());
    const loop::DenseField direct = loop::run_sequential(nest);
    EXPECT_DOUBLE_EQ(loop::max_abs_diff(direct, mapped), 0.0)
        << "kind " << static_cast<int>(kind);
  }
}

TEST(SkewViewTest, BadSkewRejected) {
  const LoopNest nest = wavefront_nest(8, 8);
  // Identity does not legalize (1,-1).
  EXPECT_THROW(loop::make_skewed_nest(nest, Mat::identity(2)), util::Error);
  // Non-unimodular.
  EXPECT_THROW(loop::make_skewed_nest(nest, Mat{{2, 0}, {0, 1}}),
               util::Error);
}

class SkewPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(SkewPipelineTest, RandomNegativeDepsEndToEnd) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 48611u + 29u);
  loop::RandomNestOptions opts;
  opts.dims = 2;
  opts.num_deps = static_cast<std::size_t>(rng.uniform(1, 3));
  opts.max_dep_component = 2;
  opts.min_extent = 8;
  opts.max_extent = 16;
  opts.nonneg_deps = false;
  const LoopNest nest = loop::random_nest(rng, opts);

  const auto skew = tile::find_legal_skew(nest.deps());
  ASSERT_TRUE(skew.has_value());
  const LoopNest view = loop::make_skewed_nest(nest, *skew);
  Vec sides(2);
  for (std::size_t d = 0; d < 2; ++d)
    sides[d] = view.deps().max_component(d) +
               static_cast<i64>(rng.uniform(1, 3));

  const exec::TilePlan plan = exec::make_plan(
      view, tile::RectTiling(sides), ScheduleKind::kOverlap);
  exec::RunOptions ropts;
  ropts.functional = true;
  const exec::RunResult run =
      exec::run_plan(view, plan, tiny_params(), ropts);
  const loop::DenseField mapped =
      loop::unskew_field(*run.field, *skew, nest.domain());
  EXPECT_DOUBLE_EQ(
      loop::max_abs_diff(loop::run_sequential(nest), mapped), 0.0)
      << "deps " << nest.deps().str() << " skew " << skew->str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkewPipelineTest, ::testing::Range(0, 10));
