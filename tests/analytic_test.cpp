// Tests for the analytic optimal-grain extension (core/analytic): the
// affine decomposition must match the step-cost model exactly, and the
// closed-form optimum must land in the flat basin of the simulated curve.
#include <gtest/gtest.h>

#include "tilo/core/analytic.hpp"
#include "tilo/machine/optimize.hpp"
#include "tilo/core/predict.hpp"
#include "tilo/core/sweep.hpp"
#include "tilo/loopnest/workloads.hpp"

using namespace tilo;
using core::AnalyticModel;
using core::Problem;
using lat::Vec;
using util::i64;

namespace {

Problem paper_i() { return core::paper_problem_i(); }

}  // namespace

TEST(AnalyticTest, AffineSidesMatchStepCostModel) {
  // A(V) and B(V) from the analytic model must equal the StepCost sides
  // computed from the exact steady-state geometry, for interior tiles.
  const Problem p = paper_i();
  const AnalyticModel m = core::derive_analytic_model(p);
  for (i64 V : {64, 128, 444, 1000}) {
    const exec::TilePlan plan = p.plan(V, sched::ScheduleKind::kOverlap);
    const mach::StepShape shape = core::steady_step_shape(plan, p.machine);
    const mach::StepCost c = mach::step_cost(p.machine, shape);
    const double vd = static_cast<double>(V);
    EXPECT_NEAR(m.cpu_side(vd), c.cpu_side(), 1e-9 + 1e-6 * c.cpu_side())
        << "V = " << V;
    // The analytic comm side excludes the constant wire latency (it is a
    // pipeline latency, not per-step channel occupancy in the model);
    // compare against the stage sums without it.
    const double comm_no_latency =
        c.comm_side() - 2.0 * p.machine.wire_latency;
    EXPECT_NEAR(m.comm_side(vd), comm_no_latency,
                1e-9 + 1e-6 * comm_no_latency)
        << "V = " << V;
  }
}

TEST(AnalyticTest, ScheduleLengthApproximationIsTight) {
  const Problem p = paper_i();
  const AnalyticModel m = core::derive_analytic_model(p);
  for (i64 V : {64, 444, 2048}) {
    const exec::TilePlan plan = p.plan(V, sched::ScheduleKind::kOverlap);
    const double approx = m.c0_overlap + m.k / static_cast<double>(V);
    EXPECT_NEAR(approx, static_cast<double>(plan.schedule_length()), 1.0)
        << "V = " << V;
  }
}

TEST(AnalyticTest, ClosedFormNearGoldenSectionOfModel) {
  const Problem p = paper_i();
  const AnalyticModel m = core::derive_analytic_model(p);
  const core::AnalyticOptimum opt =
      core::analytic_optimal_height_overlap(p);
  const mach::Minimum gs = mach::golden_section(
      [&](double v) { return m.total_overlap(v); }, 1.0,
      static_cast<double>(p.max_tile_height()), 1e-3);
  EXPECT_NEAR(opt.V_continuous, gs.x, 0.01 * gs.x + 1.0);
  EXPECT_NEAR(opt.t_predicted, gs.value, 0.01 * gs.value);
}

TEST(AnalyticTest, LandsInFlatBasinOfSimulatedCurve) {
  // t_sim(V_analytic) within 5 % of the swept simulated optimum.
  for (const Problem& p : {core::paper_problem_i(),
                           core::paper_problem_iii()}) {
    for (auto kind : {sched::ScheduleKind::kOverlap,
                      sched::ScheduleKind::kNonOverlap}) {
      const core::AnalyticOptimum opt =
          kind == sched::ScheduleKind::kOverlap
              ? core::analytic_optimal_height_overlap(p)
              : core::analytic_optimal_height_nonoverlap(p);
      const double at_analytic =
          exec::run_plan(p.nest, p.plan(opt.V, kind), p.machine).seconds;
      const core::Autotune swept = core::autotune_tile_height(
          p, kind, 16, p.max_tile_height() / 4);
      EXPECT_LE(at_analytic, 1.05 * swept.t_opt)
          << "kind " << static_cast<int>(kind) << " V_analytic " << opt.V
          << " V_swept " << swept.V_opt;
    }
  }
}

TEST(AnalyticTest, CpuBoundFlagMatchesSides) {
  const Problem p = paper_i();
  const core::AnalyticOptimum opt = core::analytic_optimal_height_overlap(p);
  const AnalyticModel m = core::derive_analytic_model(p);
  const double vd = static_cast<double>(opt.V);
  EXPECT_EQ(opt.cpu_bound, m.cpu_side(vd) >= m.comm_side(vd));
}

TEST(AnalyticTest, SingleProcessorHasNoCommunicationTerms) {
  Problem p{loop::stencil3d_nest(8, 8, 128),
            mach::MachineParams::paper_cluster(), Vec{1, 1, 1}};
  const AnalyticModel m = core::derive_analytic_model(p);
  EXPECT_DOUBLE_EQ(m.a0, 0.0);
  EXPECT_DOUBLE_EQ(m.b0, 0.0);
  EXPECT_DOUBLE_EQ(m.b1, 0.0);
  EXPECT_GT(m.a1, 0.0);  // compute term remains
  // With no per-step fixed cost the best V is the whole extent (and the
  // closed form must clamp there rather than divide by zero).
  const core::AnalyticOptimum opt = core::analytic_optimal_height_overlap(p);
  EXPECT_EQ(opt.V, 128);
}

TEST(AnalyticTest, RejectsNegativeDependencies) {
  Problem p{loop::LoopNest("neg", lat::Box::from_extents(Vec{16, 16}),
                           loop::DependenceSet({Vec{1, -1}})),
            mach::MachineParams::paper_cluster(), Vec{1, 4}};
  EXPECT_THROW(core::derive_analytic_model(p), util::Error);
}
