// Tests for the observability layer (src/tilo/obs): histogram bucket
// boundaries, the Chrome-trace golden for a tiny 2-rank run, RunReport's
// reconciliation with RunResult, counter plumbing, sink determinism and
// the PlanCache problem-identity guard.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "tilo/core/plancache.hpp"
#include "tilo/core/problem.hpp"
#include "tilo/core/sweep.hpp"
#include "tilo/exec/run.hpp"
#include "tilo/loopnest/workloads.hpp"
#include "tilo/obs/chrome_trace.hpp"
#include "tilo/obs/jsonl.hpp"
#include "tilo/obs/registry.hpp"
#include "tilo/obs/report.hpp"
#include "tilo/trace/timeline.hpp"

using namespace tilo;
using obs::LogHistogram;
using obs::Phase;
using sched::ScheduleKind;
using util::i64;

namespace {

/// Round-number costs (matching msg_test): fill_mpi = 10 us, fill_kernel =
/// 20 us, wire = 1 us/B, latency = 5 us, t_c = 1 us — so every span edge
/// in the golden below is a whole microsecond.
mach::MachineParams round_params() {
  mach::MachineParams p;
  p.t_c = 1e-6;
  p.t_t = 1e-6;
  p.bytes_per_element = 4;
  p.wire_latency = 5e-6;
  p.fill_mpi_buffer = mach::AffineCost{10e-6, 0.0};
  p.fill_kernel_buffer = mach::AffineCost{20e-6, 0.0};
  return p;
}

/// The tiny 2-rank workload: a 4x2x4 stencil cut into 2x2x2 tiles, two
/// tile columns mapped to two ranks (two tiles per rank, two messages
/// rank 0 -> rank 1).
exec::TilePlan tiny_plan(const loop::LoopNest& nest, ScheduleKind kind) {
  return exec::make_plan_with_procs(nest, tile::RectTiling(lat::Vec{2, 2, 2}),
                                    kind, lat::Vec{1, 1, 2});
}

}  // namespace

TEST(LogHistogramTest, BucketBoundaries) {
  // Bucket 0 = [0, 1], bucket i = (2^(i-1), 2^i].
  EXPECT_EQ(LogHistogram::bucket_of(0), 0);
  EXPECT_EQ(LogHistogram::bucket_of(1), 0);
  EXPECT_EQ(LogHistogram::bucket_of(2), 1);
  EXPECT_EQ(LogHistogram::bucket_of(3), 2);
  EXPECT_EQ(LogHistogram::bucket_of(4), 2);
  EXPECT_EQ(LogHistogram::bucket_of(5), 3);
  EXPECT_EQ(LogHistogram::bucket_of(8), 3);
  EXPECT_EQ(LogHistogram::bucket_of(9), 4);
  EXPECT_EQ(LogHistogram::bucket_of((i64{1} << 20)), 20);
  EXPECT_EQ(LogHistogram::bucket_of((i64{1} << 20) + 1), 21);
  // Negative durations clamp into bucket 0; beyond-the-top durations land
  // in the last bucket.
  EXPECT_EQ(LogHistogram::bucket_of(-5), 0);
  EXPECT_EQ(LogHistogram::bucket_of(std::numeric_limits<i64>::max()),
            LogHistogram::kBuckets - 1);

  // Edges are consistent with membership: lo(i) < dt <= hi(i).
  for (int b = 0; b < LogHistogram::kBuckets - 1; ++b) {
    EXPECT_EQ(LogHistogram::bucket_of(LogHistogram::bucket_hi(b)), b);
    EXPECT_EQ(LogHistogram::bucket_of(LogHistogram::bucket_hi(b) + 1), b + 1);
    EXPECT_LT(LogHistogram::bucket_lo(b), LogHistogram::bucket_hi(b));
  }

  LogHistogram h;
  h.add(1);
  h.add(2);
  h.add(1024);
  h.add(-7);  // clamped: counted in bucket 0, contributes 0 to the sum
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(10), 1u);
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_EQ(h.sum_ns(), 1027);
}

TEST(RegistryTest, SpansLandInPhaseHistogramsAndCountersAccumulate) {
  obs::Registry reg;
  reg.span(0, Phase::kCompute, 0, 1000);
  reg.span(1, Phase::kCompute, 500, 1500);
  reg.span(0, Phase::kWire, 0, 8);
  reg.host_span("sweep", 10, 20, 0);
  reg.counter("x", 1.0);
  reg.counter("x", 2.5);
  reg.counter("y", -1.0);

  EXPECT_EQ(reg.phase_histogram(Phase::kCompute).total_count(), 2u);
  EXPECT_EQ(reg.phase_histogram(Phase::kCompute).sum_ns(), 2000);
  EXPECT_EQ(reg.phase_histogram(Phase::kWire).sum_ns(), 8);
  EXPECT_EQ(reg.phase_histogram(Phase::kBlocked).total_count(), 0u);
  EXPECT_EQ(reg.host_histogram().sum_ns(), 10);
  EXPECT_DOUBLE_EQ(reg.counter_value("x"), 3.5);
  EXPECT_DOUBLE_EQ(reg.counter_value("y"), -1.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("never"), 0.0);
  const auto all = reg.counters();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "x");  // sorted by name
  EXPECT_EQ(all[1].first, "y");
}

TEST(PhaseTest, PaperTermMapping) {
  EXPECT_STREQ(obs::phase_paper_term(Phase::kFillMpiSend), "A1");
  EXPECT_STREQ(obs::phase_paper_term(Phase::kCompute), "A2");
  EXPECT_STREQ(obs::phase_paper_term(Phase::kFillMpiRecv), "A3");
  EXPECT_STREQ(obs::phase_paper_term(Phase::kKernelRecv), "B2");
  EXPECT_STREQ(obs::phase_paper_term(Phase::kKernelSend), "B3");
  EXPECT_STREQ(obs::phase_paper_term(Phase::kWire), "B1-B4");
  for (const Phase p : obs::kAllPhases) {
    EXPECT_EQ(obs::is_cpu_phase(p),
              p == Phase::kCompute || p == Phase::kFillMpiSend ||
                  p == Phase::kFillMpiRecv);
    EXPECT_EQ(obs::is_comm_phase(p),
              p == Phase::kWire || p == Phase::kKernelSend ||
                  p == Phase::kKernelRecv);
  }
}

// The golden Chrome trace of the tiny 2-rank overlapping run.  Captured
// from the simulator's deterministic (time, seq) event order; any change
// here means either the executors' scheduling or the exporter's format
// drifted — both must be deliberate.
const char* kTinyTraceGolden = R"({"traceEvents":[
{"ph":"M","pid":0,"name":"process_name","args":{"name":"sim"}},
{"ph":"M","pid":1,"name":"process_name","args":{"name":"host"}},
{"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"rank 0"}},
{"ph":"M","pid":0,"tid":1,"name":"thread_name","args":{"name":"rank 1"}},
{"ph":"X","pid":0,"tid":0,"name":"compute","cat":"A2","ts":0.000,"dur":8.000},
{"ph":"X","pid":0,"tid":0,"name":"fill-mpi-send","cat":"A1","ts":8.000,"dur":10.000},
{"ph":"X","pid":0,"tid":0,"name":"kernel-copy-send","cat":"B3","ts":18.000,"dur":20.000},
{"ph":"X","pid":0,"tid":0,"name":"wire","cat":"B1-B4","ts":38.000,"dur":8.000},
{"ph":"X","pid":0,"tid":0,"name":"compute","cat":"A2","ts":18.000,"dur":8.000},
{"ph":"X","pid":0,"tid":0,"name":"blocked","cat":"-","ts":26.000,"dur":20.000,"args":{"label":"wait-send"}},
{"ph":"X","pid":0,"tid":0,"name":"fill-mpi-send","cat":"A1","ts":46.000,"dur":10.000},
{"ph":"X","pid":0,"tid":1,"name":"wire","cat":"B1-B4","ts":51.000,"dur":8.000},
{"ph":"X","pid":0,"tid":1,"name":"kernel-copy-recv","cat":"B2","ts":59.000,"dur":20.000},
{"ph":"X","pid":0,"tid":0,"name":"kernel-copy-send","cat":"B3","ts":56.000,"dur":20.000},
{"ph":"X","pid":0,"tid":0,"name":"wire","cat":"B1-B4","ts":76.000,"dur":8.000},
{"ph":"X","pid":0,"tid":1,"name":"blocked","cat":"-","ts":0.000,"dur":79.000,"args":{"label":"wait-recv"}},
{"ph":"X","pid":0,"tid":1,"name":"fill-mpi-recv","cat":"A3","ts":79.000,"dur":10.000},
{"ph":"X","pid":0,"tid":0,"name":"blocked","cat":"-","ts":56.000,"dur":28.000,"args":{"label":"wait-send"}},
{"ph":"X","pid":0,"tid":1,"name":"wire","cat":"B1-B4","ts":89.000,"dur":8.000},
{"ph":"X","pid":0,"tid":1,"name":"kernel-copy-recv","cat":"B2","ts":97.000,"dur":20.000},
{"ph":"X","pid":0,"tid":1,"name":"compute","cat":"A2","ts":89.000,"dur":8.000},
{"ph":"X","pid":0,"tid":1,"name":"blocked","cat":"-","ts":97.000,"dur":20.000,"args":{"label":"wait-recv"}},
{"ph":"X","pid":0,"tid":1,"name":"fill-mpi-recv","cat":"A3","ts":117.000,"dur":10.000},
{"ph":"X","pid":0,"tid":1,"name":"compute","cat":"A2","ts":127.000,"dur":8.000}
],"displayTimeUnit":"ns","otherData":{"engine.drains":1,"engine.events":12,"run.bytes":32,"run.halo_bytes":232,"run.messages":2,"run.ranks":2,"run.runs":1}}
)";

TEST(ChromeTraceTest, TinyTwoRankRunMatchesGolden) {
  const loop::LoopNest nest = loop::stencil3d_nest(4, 2, 4);
  const exec::TilePlan plan = tiny_plan(nest, ScheduleKind::kOverlap);
  obs::ChromeTraceSink chrome;
  exec::RunOptions opts;
  opts.sink = &chrome;
  exec::run_plan(nest, plan, round_params(), opts);
  EXPECT_EQ(chrome.size(), 20u);
  std::ostringstream os;
  chrome.write(os);
  EXPECT_EQ(os.str(), kTinyTraceGolden);
}

TEST(ChromeTraceTest, HostSpansRebaseToEarliestAndKeepLanes) {
  obs::ChromeTraceSink chrome;
  chrome.host_span("late", 2'000'000, 2'500'000, 1);
  chrome.host_span("early", 1'000'000, 1'250'000, 0);
  std::ostringstream os;
  chrome.write(os);
  const std::string text = os.str();
  // Rebased to the earliest host span: "early" starts at 0, "late" 1 ms in.
  EXPECT_NE(text.find("{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"late\","
                      "\"cat\":\"host\",\"ts\":1000.000,\"dur\":500.000}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"early\","
                      "\"cat\":\"host\",\"ts\":0.000,\"dur\":250.000}"),
            std::string::npos)
      << text;
}

TEST(JsonlSinkTest, EmitsOneObjectPerLine) {
  std::ostringstream os;
  obs::JsonlSink sink(os);
  sink.span(0, Phase::kCompute, 0, 125);
  sink.span(1, Phase::kBlocked, 10, 35, "wait-recv");
  sink.host_span("sweep V=64", 100, 200, 2);
  sink.counter("run.messages", 888);
  EXPECT_EQ(os.str(),
            "{\"type\":\"span\",\"node\":0,\"phase\":\"compute\","
            "\"paper\":\"A2\",\"start_ns\":0,\"end_ns\":125}\n"
            "{\"type\":\"span\",\"node\":1,\"phase\":\"blocked\","
            "\"paper\":\"-\",\"start_ns\":10,\"end_ns\":35,"
            "\"label\":\"wait-recv\"}\n"
            "{\"type\":\"host_span\",\"name\":\"sweep V=64\",\"lane\":2,"
            "\"start_ns\":100,\"end_ns\":200}\n"
            "{\"type\":\"counter\",\"name\":\"run.messages\","
            "\"delta\":888}\n");
}

TEST(RunReportTest, MakespanReconcilesWithRunResultWithinOneUlp) {
  const core::Problem problem = core::paper_problem_i();
  for (const ScheduleKind kind :
       {ScheduleKind::kOverlap, ScheduleKind::kNonOverlap}) {
    const exec::TilePlan plan = problem.plan(444, kind);
    obs::ReportSink sink;
    exec::RunOptions opts;
    opts.sink = &sink;
    const exec::RunResult r =
        exec::run_plan(problem.nest, plan, problem.machine, opts);
    const obs::RunReport rep = sink.report();

    // The last span to end IS the completion event, so the integer-ns
    // makespans agree exactly and the seconds within 1 ulp.
    EXPECT_EQ(rep.makespan, r.completion);
    const double rep_seconds = sim::to_seconds(rep.makespan);
    EXPECT_LE(std::abs(rep_seconds - r.seconds),
              std::nextafter(r.seconds, INFINITY) - r.seconds);

    EXPECT_EQ(static_cast<int>(rep.ranks.size()), 16);
    EXPECT_GE(rep.critical_rank, 0);
    EXPECT_GE(rep.overlap_efficiency, 1.0);  // can never beat the bound
    EXPECT_GT(rep.total_cpu_ns, 0);
    EXPECT_GT(rep.total_comm_ns, 0);
    EXPECT_GT(rep.mean_compute_utilization, 0.0);
    EXPECT_LE(rep.max_compute_utilization, 1.0);
  }
}

TEST(RunReportTest, OverlapRunCpuPlusBlockedPartitionsEachRank) {
  // In the nonblocking executor every rank's CPU timeline is a partition
  // of [0, rank end]: A-phases and blocked waits, nothing else, no gaps.
  // (The blocking executor spends CPU inside blocking sends without a
  // span, so the identity is specific to the overlap program.)
  const core::Problem problem = core::paper_problem_iii();
  const exec::TilePlan plan = problem.plan(64, ScheduleKind::kOverlap);
  obs::ReportSink sink;
  exec::RunOptions opts;
  opts.sink = &sink;
  exec::run_plan(problem.nest, plan, problem.machine, opts);
  const obs::RunReport rep = sink.report();
  ASSERT_FALSE(rep.ranks.empty());
  for (const obs::RankBreakdown& r : rep.ranks)
    EXPECT_EQ(r.cpu_ns() + r.blocked_ns(), r.end_ns) << "rank " << r.node;
}

TEST(RunReportTest, WriteOutputsContainSummary) {
  const loop::LoopNest nest = loop::stencil3d_nest(4, 2, 4);
  obs::ReportSink sink;
  exec::RunOptions opts;
  opts.sink = &sink;
  exec::run_plan(nest, tiny_plan(nest, ScheduleKind::kOverlap),
                 round_params(), opts);
  const obs::RunReport rep = sink.report();
  std::ostringstream table;
  rep.write_table(table);
  EXPECT_NE(table.str().find("overlap efficiency"), std::string::npos);
  EXPECT_NE(table.str().find("A2"), std::string::npos);
  std::ostringstream json;
  rep.write_json(json);
  EXPECT_NE(json.str().find("\"makespan_ns\":135000"), std::string::npos);
  EXPECT_NE(json.str().find("\"ranks\":["), std::string::npos);
}

TEST(SinkDeterminismTest, EnablingSinksNeverChangesTheRun) {
  // Observation must be pure: the (time, seq) trace — and therefore the
  // completion time, event count and message count — is identical with no
  // sink, with one sink, and with a fan-out of every sink type.
  const core::Problem problem = core::paper_problem_i();
  for (const ScheduleKind kind :
       {ScheduleKind::kOverlap, ScheduleKind::kNonOverlap}) {
    const exec::TilePlan plan = problem.plan(444, kind);
    const exec::RunResult bare =
        exec::run_plan(problem.nest, plan, problem.machine);

    obs::Registry reg;
    obs::ChromeTraceSink chrome;
    obs::ReportSink report;
    trace::Timeline timeline;
    std::ostringstream jsonl_os;
    obs::JsonlSink jsonl(jsonl_os);
    obs::MultiSink fan;
    fan.add(&reg);
    fan.add(&chrome);
    fan.add(&report);
    fan.add(&timeline);
    fan.add(&jsonl);
    fan.add(nullptr);  // null entries are skipped, not dereferenced
    exec::RunOptions opts;
    opts.sink = &fan;
    const exec::RunResult observed =
        exec::run_plan(problem.nest, plan, problem.machine, opts);

    EXPECT_EQ(bare.completion, observed.completion);
    EXPECT_EQ(bare.events, observed.events);
    EXPECT_EQ(bare.messages, observed.messages);
    EXPECT_EQ(bare.bytes, observed.bytes);

    // Every fan-out target saw the same spans.
    EXPECT_EQ(reg.phase_histogram(Phase::kCompute).sum_ns(),
              report.report().ranks.empty()
                  ? 0
                  : [&] {
                      obs::Time acc = 0;
                      for (const auto& r : report.report().ranks)
                        acc += r.time(Phase::kCompute);
                      return acc;
                    }());
    // Timeline and ChromeTraceSink buffered the same spans (run_plan emits
    // no host spans, and counters are not buffered as events).
    EXPECT_EQ(timeline.intervals().size(), chrome.size());
    EXPECT_GT(chrome.size(), 0u);
    EXPECT_FALSE(jsonl_os.str().empty());
  }
}

TEST(SinkDeterminismTest, ChromeTraceByteIdenticalAcrossRuns) {
  const loop::LoopNest nest = loop::stencil3d_nest(4, 2, 4);
  const exec::TilePlan plan = tiny_plan(nest, ScheduleKind::kNonOverlap);
  std::string first;
  for (int i = 0; i < 2; ++i) {
    obs::ChromeTraceSink chrome;
    exec::RunOptions opts;
    opts.sink = &chrome;
    exec::run_plan(nest, plan, round_params(), opts);
    std::ostringstream os;
    chrome.write(os);
    if (i == 0)
      first = os.str();
    else
      EXPECT_EQ(first, os.str());
  }
  EXPECT_FALSE(first.empty());
}

// Timeline is an ordinary obs::Sink (the deprecated raw-Timeline run_plan
// overload is gone): RunOptions::sink records the same intervals.
TEST(TimelineSinkTest, RecordsViaRunOptions) {
  const loop::LoopNest nest = loop::stencil3d_nest(4, 2, 4);
  const exec::TilePlan plan = tiny_plan(nest, ScheduleKind::kOverlap);
  trace::Timeline tl;
  exec::RunOptions opts;
  opts.sink = &tl;
  const exec::RunResult r = exec::run_plan(nest, plan, round_params(), opts);
  EXPECT_EQ(r.completion, 135000);
  EXPECT_EQ(tl.intervals().size(), 20u);
}

TEST(PlanCacheTest, RejectsADifferentProblem) {
  core::PlanCache cache;
  const core::Problem a = core::paper_problem_i();
  core::Problem b = core::paper_problem_i();
  EXPECT_NO_THROW(cache.get(a, 64, ScheduleKind::kOverlap));
  // The identical problem (even another instance) is fine...
  EXPECT_NO_THROW(cache.get(b, 64, ScheduleKind::kNonOverlap));
  // ...but any identity-relevant difference throws instead of silently
  // serving plans built for the wrong problem.
  b.machine.t_c *= 2.0;
  EXPECT_THROW(cache.get(b, 64, ScheduleKind::kOverlap), util::Error);
  EXPECT_THROW(cache.get(core::paper_problem_ii(), 64,
                         ScheduleKind::kOverlap),
               util::Error);
  // The original problem keeps working after rejected lookups.
  EXPECT_NO_THROW(cache.get(a, 128, ScheduleKind::kOverlap));
}

TEST(SweepSinkTest, SweepEmitsHostSpansAndForwardsRunSpans) {
  const core::Problem problem = core::paper_problem_iii();
  obs::Registry reg;
  core::SweepOptions opts;
  opts.sink = &reg;
  const auto pts =
      core::sweep_tile_height(problem, {64, 128}, opts);
  ASSERT_EQ(pts.size(), 2u);
  // One host span per sweep point...
  EXPECT_EQ(reg.host_histogram().total_count(), 2u);
  EXPECT_DOUBLE_EQ(reg.counter_value("sweep.points"), 2.0);
  // ...and the runs' spans / counters flowed through the same sink (two
  // schedules per point → 4 runs).
  EXPECT_DOUBLE_EQ(reg.counter_value("run.runs"), 4.0);
  EXPECT_GT(reg.phase_histogram(Phase::kCompute).total_count(), 0u);
}

TEST(SweepSinkTest, ParallelSweepWithSharedRegistryMatchesSerial) {
  const core::Problem problem = core::paper_problem_iii();
  obs::Registry serial_reg;
  core::SweepOptions serial;
  serial.sink = &serial_reg;
  const auto a = core::sweep_tile_height(problem, {64, 128, 256}, serial);

  obs::Registry par_reg;
  core::SweepOptions parallel;
  parallel.threads = 3;
  parallel.sink = &par_reg;
  const auto b = core::sweep_tile_height(problem, {64, 128, 256}, parallel);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_overlap, b[i].t_overlap);
    EXPECT_EQ(a[i].t_nonoverlap, b[i].t_nonoverlap);
    EXPECT_EQ(a[i].events, b[i].events);
  }
  // The shared registry aggregates the same simulated time regardless of
  // the thread interleaving.
  for (const Phase p : obs::kAllPhases)
    EXPECT_EQ(serial_reg.phase_histogram(p).sum_ns(),
              par_reg.phase_histogram(p).sum_ns())
        << obs::phase_name(p);
}
