// The kind-dispatched Workload layer: kind names and registry, the
// parse_workload frontend dispatch, projective constraint parsing and
// per-tile volumes/surfaces, and the per-kind stage verifiers (including
// the negative tests the invariants exist for).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "tilo/loopnest/parse.hpp"
#include "tilo/pipeline/compiler.hpp"
#include "tilo/util/error.hpp"
#include "tilo/workload/dag.hpp"
#include "tilo/workload/projective.hpp"
#include "tilo/workload/uniform.hpp"

using namespace tilo;
using util::i64;

namespace {

const char* kNest2D =
    "FOR i = 0 TO 63\n"
    " FOR j = 0 TO 63\n"
    "  B(i, j) = 0.5 * (B(i-1, j) + B(i, j-1))\n"
    " ENDFOR\n"
    "ENDFOR\n";

std::string error_of(const std::function<void()>& f) {
  try {
    f();
  } catch (const util::Error& e) {
    return e.what();
  }
  return {};
}

}  // namespace

TEST(WorkloadKindTest, NamesRoundTrip) {
  for (workload::Kind k :
       {workload::Kind::kUniformNest, workload::Kind::kTileDag,
        workload::Kind::kProjectiveNest})
    EXPECT_EQ(workload::kind_from(workload::kind_name(k)), k);
  EXPECT_EQ(workload::kind_name(workload::Kind::kUniformNest), "uniform");
  EXPECT_EQ(workload::kind_name(workload::Kind::kTileDag), "dag");
  EXPECT_EQ(workload::kind_name(workload::Kind::kProjectiveNest),
            "projective");
}

TEST(WorkloadKindTest, UnknownNameListsTheRegistry) {
  const std::string msg =
      error_of([] { workload::kind_from("hypercube"); });
  EXPECT_NE(msg.find("hypercube"), std::string::npos) << msg;
  for (const char* name : {"uniform", "dag", "projective"})
    EXPECT_NE(msg.find(name), std::string::npos) << msg;
}

TEST(WorkloadKindTest, RegistryCoversEveryKindWithDescriptions) {
  const auto registry = workload::kind_registry();
  ASSERT_EQ(registry.size(), 3u);
  for (const auto& [name, description] : registry) {
    EXPECT_EQ(std::string(workload::kind_name(workload::kind_from(name))),
              name);
    EXPECT_FALSE(description.empty());
  }
}

TEST(WorkloadParseTest, UniformWrapsTheSameParsedNest) {
  const workload::WorkloadPtr w = workload::parse_workload(
      workload::Kind::kUniformNest, "wl", kNest2D);
  ASSERT_EQ(w->kind(), workload::Kind::kUniformNest);
  const auto& uniform = static_cast<const workload::UniformNestWorkload&>(*w);
  const loop::LoopNest direct = loop::parse_nest(kNest2D);
  EXPECT_EQ(loop::to_source(uniform.nest()), loop::to_source(direct));
  EXPECT_EQ(w->domain_points(), direct.iterations());
  // The uniform family keeps the constant-cost fast path.
  EXPECT_EQ(w->cost_model(), nullptr);
}

TEST(WorkloadParseTest, DagSpecBuildsTheGenerator) {
  const workload::WorkloadPtr w = workload::parse_workload(
      workload::Kind::kTileDag, "chol", "cholesky nt=4 b=16");
  ASSERT_EQ(w->kind(), workload::Kind::kTileDag);
  const auto& dag = static_cast<const workload::TileDagWorkload&>(*w);
  EXPECT_EQ(dag.num_tasks(), 20);
  EXPECT_EQ(w->name(), "chol");
  EXPECT_EQ(w->cost_model(), nullptr);  // DAGs never route through run_plan
}

TEST(WorkloadParseTest, MalformedDagSpecsThrow) {
  using workload::Kind;
  using workload::parse_workload;
  EXPECT_THROW(parse_workload(Kind::kTileDag, "x", ""), util::Error);
  EXPECT_THROW(parse_workload(Kind::kTileDag, "x", "cholesky"), util::Error);
  EXPECT_THROW(parse_workload(Kind::kTileDag, "x", "cholesky nt=four"),
               util::Error);
  EXPECT_THROW(parse_workload(Kind::kTileDag, "x", "cholesky nt"),
               util::Error);
  const std::string msg = error_of(
      [] { workload::parse_workload(workload::Kind::kTileDag, "x",
                                    "lu nt=4"); });
  EXPECT_NE(msg.find("cholesky"), std::string::npos) << msg;
}

TEST(WorkloadParseTest, ConstraintsAreProjectiveOnly) {
  for (workload::Kind k :
       {workload::Kind::kUniformNest, workload::Kind::kTileDag}) {
    const std::string msg = error_of([&] {
      workload::parse_workload(k, "x",
                               k == workload::Kind::kTileDag
                                   ? "cholesky nt=4 b=16"
                                   : kNest2D,
                               {"d1 <= d0"});
    });
    EXPECT_NE(msg.find("projective"), std::string::npos) << msg;
  }
}

TEST(WorkloadProjectiveTest, ConstraintGrammar) {
  const workload::Constraint plain = workload::parse_constraint("d1 <= d0", 2);
  EXPECT_EQ(plain.a, 1u);
  EXPECT_EQ(plain.b, 0u);
  EXPECT_EQ(plain.c, 0);
  const workload::Constraint shifted =
      workload::parse_constraint("d0 <= d1 + 4", 3);
  EXPECT_EQ(shifted.c, 4);
  const workload::Constraint negative =
      workload::parse_constraint("  d2 <= d0 - 12  ", 3);
  EXPECT_EQ(negative.a, 2u);
  EXPECT_EQ(negative.c, -12);

  EXPECT_THROW(workload::parse_constraint("d1 < d0", 2), util::Error);
  EXPECT_THROW(workload::parse_constraint("d1 <= d7", 2), util::Error);
  EXPECT_THROW(workload::parse_constraint("i <= j", 2), util::Error);
  EXPECT_THROW(workload::parse_constraint("d1 <= d0 + x", 2), util::Error);
  EXPECT_THROW(workload::parse_constraint("d1 <= d0 junk", 2), util::Error);
  // Self-referential constraints are vacuous or empty, never useful.
  EXPECT_THROW(workload::parse_constraint("d0 <= d0", 2), util::Error);
}

TEST(WorkloadProjectiveTest, TriangleVolumeIsTheClosedForm) {
  const workload::WorkloadPtr w = workload::parse_workload(
      workload::Kind::kProjectiveNest, "tri", kNest2D, {"d1 <= d0"});
  // j <= i over a 64 x 64 square: 64*65/2 lattice points.
  EXPECT_EQ(w->domain_points(), 64 * 65 / 2);
  const auto& tri = static_cast<const workload::ProjectiveNestWorkload&>(*w);
  EXPECT_TRUE(tri.contains(lat::Vec({5, 5})));
  EXPECT_TRUE(tri.contains(lat::Vec({5, 0})));
  EXPECT_FALSE(tri.contains(lat::Vec({5, 6})));
  // The workload is its own per-tile cost model.
  ASSERT_EQ(w->cost_model(), &tri);
}

TEST(WorkloadProjectiveTest, TileVolumesInteriorBoundaryEmpty) {
  const workload::WorkloadPtr w = workload::parse_workload(
      workload::Kind::kProjectiveNest, "tri", kNest2D, {"d1 <= d0"});
  const auto* costs = w->cost_model();
  const lat::Vec tile({0, 0});
  // Interior (below the diagonal): full box volume.
  const lat::Box interior(lat::Vec({32, 0}), lat::Vec({39, 7}));
  EXPECT_EQ(costs->tile_iterations(tile, interior), 64);
  // Diagonal tile: the triangular half including the diagonal.
  const lat::Box diagonal(lat::Vec({8, 8}), lat::Vec({15, 15}));
  EXPECT_EQ(costs->tile_iterations(tile, diagonal), 8 * 9 / 2);
  // Above the diagonal: cut away entirely.
  const lat::Box cut(lat::Vec({0, 32}), lat::Vec({7, 39}));
  EXPECT_EQ(costs->tile_iterations(tile, cut), 0);
}

TEST(WorkloadProjectiveTest, MessageSurfaceScalesWithFill) {
  const workload::WorkloadPtr w = workload::parse_workload(
      workload::Kind::kProjectiveNest, "tri", kNest2D, {"d1 <= d0"});
  const auto* costs = w->cost_model();
  const lat::Vec tile({0, 0});
  const lat::Vec offset({1, 0});
  const lat::Box interior(lat::Vec({32, 0}), lat::Vec({39, 7}));
  const lat::Box diagonal(lat::Vec({8, 8}), lat::Vec({15, 15}));
  const lat::Box cut(lat::Vec({0, 32}), lat::Vec({7, 39}));
  const i64 surface = 8;  // one face of an 8 x 8 tile
  EXPECT_EQ(costs->message_points(tile, interior, offset, surface), surface);
  const i64 scaled = costs->message_points(tile, diagonal, offset, surface);
  EXPECT_GT(scaled, 0);
  EXPECT_LT(scaled, surface);
  EXPECT_EQ(costs->message_points(tile, cut, offset, surface), 0);
}

TEST(WorkloadProjectiveTest, DegenerateConstraintSetsAreRejected) {
  // No constraints: that's the uniform family.
  EXPECT_THROW(workload::parse_workload(workload::Kind::kProjectiveNest,
                                        "x", kNest2D, {}),
               util::Error);
  // Contradictory cuts empty the domain.
  const std::string msg = error_of([] {
    workload::parse_workload(workload::Kind::kProjectiveNest, "x", kNest2D,
                             {"d1 <= d0 - 32", "d0 <= d1 - 33"});
  });
  EXPECT_NE(msg.find("nothing"), std::string::npos) << msg;
}

TEST(WorkloadPipelineTest, ProjectiveCompileRunsEndToEnd) {
  // Ranks along d1 (the non-mapped dimension) so halo messages cross
  // rank boundaries and the density-scaled surfaces are observable.
  pipeline::CompileOptions opts;
  opts.workload_kind = workload::Kind::kProjectiveNest;
  opts.constraints = {"d1 <= d0"};
  opts.procs = lat::Vec({1, 4});
  opts.height = 16;
  const pipeline::ArtifactStore out =
      pipeline::Compiler(opts).compile_source("tri", kNest2D);
  EXPECT_EQ(out.workload().kind(), workload::Kind::kProjectiveNest);
  ASSERT_TRUE(out.backend().run);
  EXPECT_GT(out.backend().run->completion, 0);
  EXPECT_GT(out.backend().run->messages, 0);

  // The cut makes the simulation strictly cheaper than the full square:
  // fewer iterations computed and fewer halo bytes moved.
  pipeline::CompileOptions full = opts;
  full.workload_kind = workload::Kind::kUniformNest;
  full.constraints.clear();
  const pipeline::ArtifactStore square =
      pipeline::Compiler(full).compile_source("sq", kNest2D);
  ASSERT_TRUE(square.backend().run);
  EXPECT_LT(out.backend().run->completion, square.backend().run->completion);
  EXPECT_LT(out.backend().run->bytes, square.backend().run->bytes);
}

TEST(WorkloadPipelineTest, VacuousConstraintsFailTheLoweringVerifier) {
  // j <= i + 63 holds everywhere on the 64 x 64 square: every tile keeps
  // its full box volume, so the projective declaration is wrong.
  pipeline::CompileOptions opts;
  opts.workload_kind = workload::Kind::kProjectiveNest;
  opts.constraints = {"d1 <= d0 + 63"};
  opts.procs = lat::Vec({4, 1});
  opts.height = 16;
  const std::string msg = error_of([&] {
    pipeline::Compiler(opts).compile_source("vacuous", kNest2D);
  });
  EXPECT_NE(msg.find("Lowering"), std::string::npos) << msg;
  EXPECT_NE(msg.find("cut no tile"), std::string::npos) << msg;
  EXPECT_NE(msg.find("uniform"), std::string::npos) << msg;
}

TEST(WorkloadPipelineTest, ConstraintsOnUniformCompilesFailTheFrontend) {
  pipeline::CompileOptions opts;
  opts.constraints = {"d1 <= d0"};
  const std::string msg = error_of([&] {
    pipeline::Compiler(opts).compile_source("sq", kNest2D);
  });
  EXPECT_NE(msg.find("Frontend"), std::string::npos) << msg;
  EXPECT_NE(msg.find("projective"), std::string::npos) << msg;
}

TEST(WorkloadPipelineTest, StageLogDescribesTheProjectiveCut) {
  pipeline::CompileOptions opts;
  opts.workload_kind = workload::Kind::kProjectiveNest;
  opts.constraints = {"d1 <= d0"};
  opts.procs = lat::Vec({4, 1});
  opts.height = 16;
  const pipeline::ArtifactStore out =
      pipeline::Compiler(opts).compile_source("tri", kNest2D);
  std::ostringstream os;
  pipeline::write_stage_log(os, out);
  const std::string log = os.str();
  EXPECT_NE(log.find("projective nest"), std::string::npos) << log;
  EXPECT_NE(log.find("2080/4096 points"), std::string::npos) << log;
}

TEST(WorkloadScenarioTest, DagAndProjectiveKindsParse) {
  const pipeline::ScenarioFile scenario = pipeline::parse_scenario(R"({
    "tilo": "scenario", "version": 1,
    "workloads": [
      {"name": "chol", "source": "cholesky nt=4 b=16", "kind": "dag",
       "auto_procs": 4},
      {"name": "tri", "source": "FOR i = 0 TO 63\n FOR j = 0 TO 63\n  B(i, j) = 0.5 * (B(i-1, j) + B(i, j-1))\n ENDFOR\nENDFOR\n",
       "kind": "projective", "constraints": ["d1 <= d0"],
       "procs": [4, 1], "height": 16}
    ]})");
  ASSERT_EQ(scenario.workloads.size(), 2u);
  EXPECT_EQ(scenario.workloads[0].workload_kind, workload::Kind::kTileDag);
  EXPECT_EQ(scenario.workloads[1].workload_kind,
            workload::Kind::kProjectiveNest);
  ASSERT_EQ(scenario.workloads[1].constraints.size(), 1u);

  const std::vector<pipeline::ArtifactStore> outs =
      pipeline::Compiler().compile(scenario);
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_GT(outs[0].dag_plan().bound.bound_ns, 0);
  ASSERT_TRUE(outs[0].backend().run);
  EXPECT_GE(outs[0].backend().run->completion,
            outs[0].dag_plan().bound.bound_ns);
  EXPECT_EQ(outs[1].workload().kind(), workload::Kind::kProjectiveNest);
}

TEST(WorkloadScenarioTest, UnknownKindNamesTheRegistry) {
  const std::string msg = error_of([] {
    pipeline::parse_scenario(R"({
      "tilo": "scenario", "version": 1,
      "workloads": [{"name": "x", "source": "y", "kind": "hypercube"}]})");
  });
  EXPECT_NE(msg.find("hypercube"), std::string::npos) << msg;
  EXPECT_NE(msg.find("projective"), std::string::npos) << msg;
}
