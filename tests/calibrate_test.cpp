// Tests for the measurement-driven calibration fitter.
#include <gtest/gtest.h>

#include "tilo/machine/calibrate.hpp"
#include "tilo/msg/cluster.hpp"
#include "tilo/util/rng.hpp"

using namespace tilo;
using mach::AffineCost;
using mach::CostSample;

TEST(CalibrateTest, TwoPointsFitExactly) {
  const auto fit = mach::fit_affine({{100, 10e-6}, {300, 20e-6}});
  EXPECT_NEAR(fit.per_byte, 0.05e-6, 1e-12);
  EXPECT_NEAR(fit.base, 5e-6, 1e-12);
  EXPECT_NEAR(mach::fit_residual(fit, {{100, 10e-6}, {300, 20e-6}}), 0.0,
              1e-9);
}

TEST(CalibrateTest, PaperSamplesReproduceTheDefaultModel) {
  const auto fit = mach::fit_affine(mach::paper_fill_mpi_samples());
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  EXPECT_NEAR(fit.base, p.fill_mpi_buffer.base, 2e-6);
  EXPECT_NEAR(fit.per_byte, p.fill_mpi_buffer.per_byte, 1e-10);
  EXPECT_LT(mach::fit_residual(fit, mach::paper_fill_mpi_samples()), 1e-9);
}

TEST(CalibrateTest, SingleSamplePinsTheBase) {
  const auto fit = mach::fit_affine({{512, 42e-6}});
  EXPECT_DOUBLE_EQ(fit.base, 42e-6);
  EXPECT_DOUBLE_EQ(fit.per_byte, 0.0);
}

TEST(CalibrateTest, IdenticalSizesAverageTheBase) {
  const auto fit = mach::fit_affine({{64, 10e-6}, {64, 14e-6}});
  EXPECT_DOUBLE_EQ(fit.base, 12e-6);
  EXPECT_DOUBLE_EQ(fit.per_byte, 0.0);
}

TEST(CalibrateTest, NoisyOverdeterminedFitRecoversTruth) {
  // Synthesize samples from a known model with +/-2 % deterministic noise.
  const AffineCost truth{30e-6, 0.08e-9 * 1000};  // 80 ns/KB
  util::Rng rng(7);
  std::vector<CostSample> samples;
  for (int i = 1; i <= 20; ++i) {
    const util::i64 bytes = i * 500;
    const double noise = 1.0 + (rng.uniform01() - 0.5) * 0.04;
    samples.push_back({bytes, truth.at(bytes) * noise});
  }
  const auto fit = mach::fit_affine(samples);
  EXPECT_NEAR(fit.base, truth.base, truth.base * 0.2);
  EXPECT_NEAR(fit.per_byte, truth.per_byte, truth.per_byte * 0.05);
  EXPECT_LT(mach::fit_residual(fit, samples), 0.05);
}

TEST(CalibrateTest, NegativeBaseClampsToOrigin) {
  // Points that extrapolate below zero at bytes = 0.
  const auto fit = mach::fit_affine({{1000, 1e-6}, {2000, 3e-6}});
  EXPECT_GE(fit.base, 0.0);
  EXPECT_GT(fit.per_byte, 0.0);
}

TEST(CalibrateTest, FitsTheSimulatorsEmergentMessageCost) {
  // The paper's Section 5 methodology, run against the simulator instead
  // of the cluster: stream back-to-back messages of several sizes, time
  // them, fit the affine model — the fitted slope/base must recover the
  // configured B-side pipeline (B3 + B4 + B1 + B2 per message on the
  // shared channel; the one-off latency washes out over the stream).
  mach::MachineParams p;
  p.t_c = 1e-6;
  p.t_t = 0.1e-6;
  p.bytes_per_element = 4;
  p.wire_latency = 20e-6;
  p.fill_mpi_buffer = mach::AffineCost{10e-6, 1e-9};
  p.fill_kernel_buffer = mach::AffineCost{15e-6, 2e-9};

  std::vector<CostSample> samples;
  for (util::i64 bytes : {1000, 2000, 4000, 8000}) {
    constexpr int kMessages = 64;
    msg::Cluster c(2, p);
    for (int i = 0; i < kMessages; ++i) c.node(1).irecv(0, i);
    c.engine().at(0, [&] {
      for (int i = 0; i < kMessages; ++i) c.node(0).isend(1, i, bytes);
    });
    const double total = sim::to_seconds(c.run());
    samples.push_back({bytes, total / kMessages});
  }
  const AffineCost fit = mach::fit_affine(samples);
  // Steady state per message: sender leg B3+B4 and receiver leg B1+B2
  // pipeline, so the stream advances at max(leg) = the slower leg; with
  // symmetric kernel costs both legs are equal: 15us + 2ns/B + 0.05us/B.
  const double expect_base = p.fill_kernel_buffer.base;
  const double expect_slope =
      p.fill_kernel_buffer.per_byte + 0.5 * p.t_t;
  EXPECT_NEAR(fit.per_byte, expect_slope, 0.05 * expect_slope);
  EXPECT_NEAR(fit.base, expect_base, 0.25 * expect_base + 2e-6);
}

TEST(CalibrateTest, RejectsBadInput) {
  EXPECT_THROW(mach::fit_affine({}), util::Error);
  EXPECT_THROW(mach::fit_affine({{-1, 1e-6}}), util::Error);
  EXPECT_THROW(mach::fit_affine({{1, -1e-6}}), util::Error);
}
