// Tests for the measurement-driven calibration fitter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tilo/machine/calibrate.hpp"
#include "tilo/msg/cluster.hpp"
#include "tilo/util/rng.hpp"

using namespace tilo;
using mach::AffineCost;
using mach::CostSample;

TEST(CalibrateTest, TwoPointsFitExactly) {
  const auto fit = mach::fit_affine({{100, 10e-6}, {300, 20e-6}});
  EXPECT_NEAR(fit.per_byte, 0.05e-6, 1e-12);
  EXPECT_NEAR(fit.base, 5e-6, 1e-12);
  EXPECT_NEAR(mach::fit_residual(fit, {{100, 10e-6}, {300, 20e-6}}), 0.0,
              1e-9);
}

TEST(CalibrateTest, PaperSamplesReproduceTheDefaultModel) {
  const auto fit = mach::fit_affine(mach::paper_fill_mpi_samples());
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  EXPECT_NEAR(fit.base, p.fill_mpi_buffer.base, 2e-6);
  EXPECT_NEAR(fit.per_byte, p.fill_mpi_buffer.per_byte, 1e-10);
  EXPECT_LT(mach::fit_residual(fit, mach::paper_fill_mpi_samples()), 1e-9);
}

TEST(CalibrateTest, SingleSamplePinsTheBase) {
  const auto fit = mach::fit_affine({{512, 42e-6}});
  EXPECT_DOUBLE_EQ(fit.base, 42e-6);
  EXPECT_DOUBLE_EQ(fit.per_byte, 0.0);
}

TEST(CalibrateTest, IdenticalSizesAverageTheBase) {
  const auto fit = mach::fit_affine({{64, 10e-6}, {64, 14e-6}});
  EXPECT_DOUBLE_EQ(fit.base, 12e-6);
  EXPECT_DOUBLE_EQ(fit.per_byte, 0.0);
}

TEST(CalibrateTest, NoisyOverdeterminedFitRecoversTruth) {
  // Synthesize samples from a known model with +/-2 % deterministic noise.
  const AffineCost truth{30e-6, 0.08e-9 * 1000};  // 80 ns/KB
  util::Rng rng(7);
  std::vector<CostSample> samples;
  for (int i = 1; i <= 20; ++i) {
    const util::i64 bytes = i * 500;
    const double noise = 1.0 + (rng.uniform01() - 0.5) * 0.04;
    samples.push_back({bytes, truth.at(bytes) * noise});
  }
  const auto fit = mach::fit_affine(samples);
  EXPECT_NEAR(fit.base, truth.base, truth.base * 0.2);
  EXPECT_NEAR(fit.per_byte, truth.per_byte, truth.per_byte * 0.05);
  EXPECT_LT(mach::fit_residual(fit, samples), 0.05);
}

TEST(CalibrateTest, NegativeBaseClampsToOrigin) {
  // Points that extrapolate below zero at bytes = 0.
  const auto fit = mach::fit_affine({{1000, 1e-6}, {2000, 3e-6}});
  EXPECT_GE(fit.base, 0.0);
  EXPECT_GT(fit.per_byte, 0.0);
}

TEST(CalibrateTest, FitsTheSimulatorsEmergentMessageCost) {
  // The paper's Section 5 methodology, run against the simulator instead
  // of the cluster: stream back-to-back messages of several sizes, time
  // them, fit the affine model — the fitted slope/base must recover the
  // configured B-side pipeline (B3 + B4 + B1 + B2 per message on the
  // shared channel; the one-off latency washes out over the stream).
  mach::MachineParams p;
  p.t_c = 1e-6;
  p.t_t = 0.1e-6;
  p.bytes_per_element = 4;
  p.wire_latency = 20e-6;
  p.fill_mpi_buffer = mach::AffineCost{10e-6, 1e-9};
  p.fill_kernel_buffer = mach::AffineCost{15e-6, 2e-9};

  std::vector<CostSample> samples;
  for (util::i64 bytes : {1000, 2000, 4000, 8000}) {
    constexpr int kMessages = 64;
    msg::Cluster c(2, p);
    for (int i = 0; i < kMessages; ++i) c.node(1).irecv(0, i);
    c.engine().at(0, [&] {
      for (int i = 0; i < kMessages; ++i) c.node(0).isend(1, i, bytes);
    });
    const double total = sim::to_seconds(c.run());
    samples.push_back({bytes, total / kMessages});
  }
  const AffineCost fit = mach::fit_affine(samples);
  // Steady state per message: sender leg B3+B4 and receiver leg B1+B2
  // pipeline, so the stream advances at max(leg) = the slower leg; with
  // symmetric kernel costs both legs are equal: 15us + 2ns/B + 0.05us/B.
  const double expect_base = p.fill_kernel_buffer.base;
  const double expect_slope =
      p.fill_kernel_buffer.per_byte + 0.5 * p.t_t;
  EXPECT_NEAR(fit.per_byte, expect_slope, 0.05 * expect_slope);
  EXPECT_NEAR(fit.base, expect_base, 0.25 * expect_base + 2e-6);
}

TEST(CalibrateTest, RejectsBadInput) {
  EXPECT_THROW(mach::fit_affine({}), util::Error);
  EXPECT_THROW(mach::fit_affine({{-1, 1e-6}}), util::Error);
  EXPECT_THROW(mach::fit_affine({{1, -1e-6}}), util::Error);
}

TEST(CalibrateTest, NegativeBaseClampRefitsTheSlope) {
  // Strongly decreasing intercept: the unconstrained regression lands at a
  // negative base.  The clamp must refit through the origin (not merely
  // zero the base and keep the old slope), so predictions stay sane.
  const std::vector<CostSample> samples{
      {1000, 0.5e-6}, {2000, 2e-6}, {4000, 5e-6}, {8000, 11e-6}};
  const AffineCost fit = mach::fit_affine(samples);
  EXPECT_DOUBLE_EQ(fit.base, 0.0);
  double sxy = 0.0;
  double sxx = 0.0;
  for (const CostSample& s : samples) {
    sxy += static_cast<double>(s.bytes) * s.seconds;
    sxx += static_cast<double>(s.bytes) * static_cast<double>(s.bytes);
  }
  EXPECT_DOUBLE_EQ(fit.per_byte, sxy / sxx);
  // The smallest sample sits far below the origin-refit line, so its
  // relative residual is large by construction — just bounded.
  EXPECT_LT(mach::fit_residual(fit, samples), 2.0);
}

TEST(CalibrateTest, FitResidualOnNoisySamplesIsBoundedByTheNoise) {
  const AffineCost truth{50e-6, 2e-9};
  const std::vector<util::i64> sizes = mach::probe_sizes(256, 65536, 20);
  util::Rng rng(11);
  std::vector<CostSample> samples;
  for (util::i64 b : sizes) {
    const double factor = 1.0 + (rng.uniform01() - 0.5) * 0.06;  // +/- 3 %
    samples.push_back({b, truth.at(b) * factor});
  }
  const AffineCost fit = mach::fit_affine(samples);
  // A least-squares fit through +/-3 % noise cannot be off by much more
  // than the noise itself (slack for the base, which is poorly pinned by
  // large sizes).
  EXPECT_LT(mach::fit_residual(fit, samples), 0.10);
  EXPECT_DOUBLE_EQ(mach::fit_residual(truth, samples), 0.0 + [&] {
    double worst = 0.0;
    for (const CostSample& s : samples)
      worst = std::max(worst,
                       std::fabs(truth.at(s.bytes) - s.seconds) / s.seconds);
    return worst;
  }());
}

TEST(CalibrateTest, ProbeSizesAreAscendingAndCoverTheRange) {
  const std::vector<util::i64> sizes = mach::probe_sizes(256, 65536, 25);
  ASSERT_GE(sizes.size(), 2u);
  EXPECT_EQ(sizes.front(), 256);
  EXPECT_EQ(sizes.back(), 65536);
  for (std::size_t i = 1; i < sizes.size(); ++i)
    EXPECT_LT(sizes[i - 1], sizes[i]);
  // The geometric ladder hits the power-of-two landmarks a planted Mcrit
  // sits on (256 * 2^(i/3)), so breakpoint recovery can be exact.
  EXPECT_NE(std::find(sizes.begin(), sizes.end(), 8192), sizes.end());
  EXPECT_THROW(mach::probe_sizes(0, 10, 3), util::Error);
  EXPECT_THROW(mach::probe_sizes(10, 5, 3), util::Error);
}

TEST(CalibrateTest, TwoSlopeFitRecoversAPlantedBreakpoint) {
  mach::TwoSlopeFit truth;
  truth.tail = AffineCost{20e-6, 1e-9};
  truth.mcrit = 8192;
  truth.factor_below = 2.0;
  std::vector<CostSample> samples;
  for (util::i64 b : mach::probe_sizes(256, 65536, 25))
    samples.push_back({b, truth.at(b)});
  const mach::TwoSlopeFit fit = mach::fit_two_slope(samples);
  EXPECT_EQ(fit.mcrit, truth.mcrit);
  EXPECT_NEAR(fit.factor_below, truth.factor_below, 1e-6);
  EXPECT_NEAR(fit.tail.base, truth.tail.base, 1e-9);
  EXPECT_NEAR(fit.tail.per_byte, truth.tail.per_byte, 1e-15);
  EXPECT_LT(fit.residual, 1e-9);
}

TEST(CalibrateTest, TwoSlopeFitIsParsimoniousOnAffineData) {
  // Pure affine data must come back with mcrit = 0 — the breakpoint may
  // not survive on rounding noise alone.
  const AffineCost truth{30e-6, 1.5e-9};
  std::vector<CostSample> samples;
  for (util::i64 b : mach::probe_sizes(256, 65536, 25))
    samples.push_back({b, truth.at(b)});
  const mach::TwoSlopeFit fit = mach::fit_two_slope(samples);
  EXPECT_EQ(fit.mcrit, 0);
  EXPECT_DOUBLE_EQ(fit.factor_below, 1.0);
  EXPECT_NEAR(fit.tail.base, truth.base, 1e-9);
  EXPECT_LT(fit.residual, 1e-9);
}

TEST(CalibrateTest, BetaFitRecoversPlantedEfficiencies) {
  const double beta_kernel = 0.6;
  const double beta_wire = 0.85;
  std::vector<mach::OverlapSample> samples;
  for (int i = 1; i <= 12; ++i) {
    mach::OverlapSample s;
    s.kernel_seconds = 3e-6 * i;
    s.wire_seconds = 1e-6 * (13 - i);  // decorrelate the two regressors
    s.extra_seconds = (1.0 - beta_kernel) * s.kernel_seconds +
                      (1.0 - beta_wire) * s.wire_seconds;
    samples.push_back(s);
  }
  const mach::BetaFit fit = mach::fit_betas(samples);
  EXPECT_NEAR(fit.beta_kernel, beta_kernel, 1e-9);
  EXPECT_NEAR(fit.beta_wire, beta_wire, 1e-9);
  EXPECT_LT(fit.residual, 1e-9);
}

TEST(CalibrateTest, BetaFitClampsIntoTheUnitInterval) {
  // Negative "extra" observations (measurement undershoot) would fit
  // beta > 1; the clamp keeps the model physical.
  std::vector<mach::OverlapSample> samples;
  for (int i = 1; i <= 6; ++i)
    samples.push_back({1e-6 * i, 0.5e-6 * i, -0.1e-6 * i});
  const mach::BetaFit fit = mach::fit_betas(samples);
  EXPECT_LE(fit.beta_kernel, 1.0);
  EXPECT_GE(fit.beta_kernel, 0.0);
  EXPECT_LE(fit.beta_wire, 1.0);
  EXPECT_GE(fit.beta_wire, 0.0);
}

TEST(CalibrateTest, RoundTripRecoversPlantedInterferenceExactly) {
  // The acceptance property: probe a planted InterferenceModel with zero
  // noise and the harness must hand back its parameters.  The planted
  // Mcrit sits on the probe ladder, so recovery is exact, not just close.
  mach::InterferenceConfig planted;
  planted.beta_kernel = 0.7;
  planted.beta_wire = 0.9;
  planted.mcrit = 8192;
  planted.factor_below = 1.8;
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  const mach::InterferenceModel reference(p, planted);

  const mach::CalibrationReport rep =
      mach::calibrate_interference(reference);
  EXPECT_NEAR(rep.interference.beta_kernel, planted.beta_kernel, 1e-6);
  EXPECT_NEAR(rep.interference.beta_wire, planted.beta_wire, 1e-6);
  EXPECT_EQ(rep.interference.mcrit, planted.mcrit);
  EXPECT_NEAR(rep.interference.factor_below, planted.factor_below, 1e-6);
  EXPECT_NEAR(rep.params.fill_mpi_buffer.base, p.fill_mpi_buffer.base,
              1e-12);
  EXPECT_NEAR(rep.params.fill_mpi_buffer.per_byte,
              p.fill_mpi_buffer.per_byte, 1e-15);
  EXPECT_LT(rep.fill_mpi_residual, 1e-9);
  EXPECT_LT(rep.fill_kernel_residual, 1e-9);
  EXPECT_LT(rep.beta_residual, 1e-6);

  // The report's loadable model predicts like the reference.
  const std::shared_ptr<const mach::Model> fitted = rep.model();
  mach::StepShape shape;
  shape.iterations = 4096;
  shape.send_bytes = {4096, 16384};
  shape.recv_bytes = {4096, 16384};
  for (auto level : {mach::OverlapLevel::kNone, mach::OverlapLevel::kDma,
                     mach::OverlapLevel::kDuplexDma})
    EXPECT_NEAR(fitted->step_seconds(shape, level),
                reference.step_seconds(shape, level),
                1e-9 * reference.step_seconds(shape, level));
}

TEST(CalibrateTest, RoundTripUnderNoiseStaysWithinTolerance) {
  mach::InterferenceConfig planted;
  planted.beta_kernel = 0.7;
  planted.beta_wire = 0.9;
  planted.mcrit = 8192;
  planted.factor_below = 1.8;
  const mach::InterferenceModel reference(
      mach::MachineParams::paper_cluster(), planted);
  const mach::CalibrationReport rep =
      mach::calibrate_interference(reference, 0.02, 42);
  EXPECT_NEAR(rep.interference.beta_kernel, planted.beta_kernel, 0.1);
  EXPECT_NEAR(rep.interference.beta_wire, planted.beta_wire, 0.1);
  // The breakpoint may land on a neighboring ladder rung under noise.
  if (rep.interference.mcrit > 0) {
    EXPECT_GE(rep.interference.mcrit, planted.mcrit / 2);
    EXPECT_LE(rep.interference.mcrit, planted.mcrit * 2);
  }
  EXPECT_LT(rep.fill_mpi_residual, 0.05);
  EXPECT_LT(rep.fill_kernel_residual, 0.05);
}

TEST(CalibrateTest, CalibratingAnIdealReferenceFindsNoInterference) {
  const mach::IdealOverlapModel reference(
      mach::MachineParams::paper_cluster());
  const mach::CalibrationReport rep =
      mach::calibrate_interference(reference);
  EXPECT_DOUBLE_EQ(rep.interference.beta_kernel, 1.0);
  EXPECT_DOUBLE_EQ(rep.interference.beta_wire, 1.0);
  EXPECT_EQ(rep.interference.mcrit, 0);
  EXPECT_LT(rep.fill_mpi_residual, 1e-9);
  EXPECT_LT(rep.fill_kernel_residual, 1e-9);
}
