// Tests for tilo::store — the content-addressed plan store and its
// replicated serving tier.
//
// The acceptance-critical properties pinned down here:
//   * crash-safe persistence — a segment log replays every intact record
//     and survives torn tails / flipped bytes with a warning, never an
//     error; a restarted server rehydrates and answers warm keys without
//     recompiling (compiles == 0, store hits > 0);
//   * byte-identity — the same problem key answers with byte-identical
//     result bytes on every replica of a ring, whichever one serves it;
//   * admission control — per-tenant token buckets deny over-quota
//     compiles with the explicit quota_exceeded outcome, and one tenant's
//     flood never drains another tenant's bucket.
//
// Suites named Store* run under TSan (CMakePresets tsan filter); the
// SIGKILL chaos tests live in store_chaos_test.cpp under ForkStoreChaosTest
// so the sanitizer job skips them (TSan and fork() do not mix).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tilo/fleet/controller.hpp"
#include "tilo/fleet/unit.hpp"
#include "tilo/pipeline/json.hpp"
#include "tilo/sched/fairshare.hpp"
#include "tilo/store/plan_store.hpp"
#include "tilo/store/quota.hpp"
#include "tilo/store/ring.hpp"
#include "tilo/store/segment_log.hpp"
#include "tilo/svc/client.hpp"
#include "tilo/svc/ring_client.hpp"
#include "tilo/svc/server.hpp"
#include "tilo/util/error.hpp"

namespace store = tilo::store;
namespace svc = tilo::svc;
namespace sched = tilo::sched;
using tilo::util::i64;

namespace {

std::string fresh_dir(const char* tag) {
  static int counter = 0;
  const std::string dir = ::testing::TempDir() + "store_test_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter++);
  return dir;
}

std::string fresh_socket(const char* tag) {
  static int counter = 0;
  return "unix:" + ::testing::TempDir() + "store_test_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++) +
         ".sock";
}

/// Path of the only segment in a fresh (never-compacted) log directory.
std::string first_segment(const std::string& dir) {
  return dir + "/seg-000001.log";
}

std::vector<std::pair<std::string, std::string>> replay_all(
    const store::SegmentLog& log, store::ReplayStats* stats = nullptr) {
  std::vector<std::pair<std::string, std::string>> records;
  const store::ReplayStats s =
      log.replay([&records](std::string_view k, std::string_view v) {
        records.emplace_back(std::string(k), std::string(v));
      });
  if (stats) *stats = s;
  return records;
}

// ------------------------------------------------------------- segment log

TEST(StoreSegmentLogTest, AppendReplayRoundTrip) {
  const std::string dir = fresh_dir("roundtrip");
  store::SegmentLog log = store::SegmentLog::open(dir);
  log.append("alpha", "one");
  log.append("beta", "two");
  log.append("alpha", "three");  // later generations replay in order

  store::ReplayStats stats;
  const auto records = replay_all(log, &stats);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (std::pair<std::string, std::string>{"alpha", "one"}));
  EXPECT_EQ(records[1], (std::pair<std::string, std::string>{"beta", "two"}));
  EXPECT_EQ(records[2],
            (std::pair<std::string, std::string>{"alpha", "three"}));
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.skipped_bytes, 0u);
  EXPECT_TRUE(stats.warning.empty());
}

TEST(StoreSegmentLogTest, ReplaySurvivesProcessBoundary) {
  const std::string dir = fresh_dir("reopen");
  {
    store::SegmentLog log = store::SegmentLog::open(dir);
    log.append("k", "v");
  }  // closed — simulates the process ending
  store::SegmentLog log = store::SegmentLog::open(dir);
  log.append("k2", "v2");  // append continues the same segment
  EXPECT_EQ(replay_all(log).size(), 2u);
}

TEST(StoreSegmentLogTest, TornTailIsSkippedWithWarning) {
  const std::string dir = fresh_dir("torn");
  {
    store::SegmentLog log = store::SegmentLog::open(dir);
    log.append("intact", "value");
    log.append("doomed", "this record will be half written");
  }
  // Truncate mid-record — exactly what a crash mid-append leaves behind.
  std::ifstream in(first_segment(dir), std::ios::binary | std::ios::ate);
  const auto size = static_cast<long>(in.tellg());
  in.close();
  ASSERT_EQ(::truncate(first_segment(dir).c_str(), size - 7), 0);

  store::SegmentLog log = store::SegmentLog::open(dir);
  store::ReplayStats stats;
  const auto records = replay_all(log, &stats);
  ASSERT_EQ(records.size(), 1u);  // the intact prefix survives
  EXPECT_EQ(records[0].first, "intact");
  EXPECT_GT(stats.skipped_bytes, 0u);
  EXPECT_NE(stats.warning.find("torn"), std::string::npos) << stats.warning;
}

TEST(StoreSegmentLogTest, CrcCatchesFlippedByte) {
  const std::string dir = fresh_dir("crc");
  {
    store::SegmentLog log = store::SegmentLog::open(dir);
    log.append("first", "good");
    log.append("second", "about to be corrupted");
  }
  // Flip one payload byte of the second record (near the end of the file).
  std::fstream f(first_segment(dir),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<long>(f.tellg());
  f.seekp(size - 3);
  f.put('X');
  f.close();

  store::SegmentLog log = store::SegmentLog::open(dir);
  store::ReplayStats stats;
  const auto records = replay_all(log, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].first, "first");
  EXPECT_NE(stats.warning.find("CRC"), std::string::npos) << stats.warning;
}

TEST(StoreSegmentLogTest, ForeignFileAnswersBadMagic) {
  const std::string dir = fresh_dir("magic");
  {
    store::SegmentLog log = store::SegmentLog::open(dir);  // creates the dir
    (void)log;
  }
  std::ofstream(first_segment(dir), std::ios::binary)
      << "this is not a segment log";
  store::SegmentLog log = store::SegmentLog::open(dir);
  store::ReplayStats stats;
  EXPECT_TRUE(replay_all(log, &stats).empty());
  EXPECT_NE(stats.warning.find("bad magic"), std::string::npos)
      << stats.warning;
}

TEST(StoreSegmentLogTest, CompactionKeepsExactlyTheLiveSet) {
  const std::string dir = fresh_dir("compact");
  store::SegmentLog log = store::SegmentLog::open(dir);
  for (int i = 0; i < 50; ++i)
    log.append("hot", "generation " + std::to_string(i));
  log.append("cold", "stable");
  const std::uint64_t before = log.bytes();

  log.compact({{"cold", "stable"}, {"hot", "generation 49"}});
  EXPECT_LT(log.bytes(), before);
  store::ReplayStats stats;
  const auto records = replay_all(log, &stats);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(stats.segments, 1u);  // history segments were unlinked

  // Appends after compaction land in the new segment and replay after it.
  log.append("hot", "generation 50");
  const auto after = replay_all(log);
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(after[2].second, "generation 50");
}

// --------------------------------------------------------------- plan store

TEST(StorePlanStoreTest, MemoryOnlyGetPutCounts) {
  store::PlanStore ps(store::PlanStoreConfig{});
  EXPECT_FALSE(ps.persistent());
  EXPECT_FALSE(ps.get("missing").has_value());
  EXPECT_TRUE(ps.put("k", "v"));
  EXPECT_FALSE(ps.put("k", "v"));  // idempotent re-put is a no-op
  EXPECT_EQ(ps.get("k").value(), "v");
  EXPECT_EQ(ps.hits(), 1u);
  EXPECT_EQ(ps.misses(), 1u);
  EXPECT_EQ(ps.puts(), 1u);
}

TEST(StorePlanStoreTest, RehydratesAcrossGenerations) {
  store::PlanStoreConfig cfg;
  cfg.dir = fresh_dir("rehydrate");
  {
    store::PlanStore ps(cfg);
    EXPECT_EQ(ps.rehydrated(), 0u);
    ps.put("plan-a", "{\"result\":1}");
    ps.put("plan-b", "{\"result\":2}");
    ps.put("plan-a", "{\"result\":3}");  // newer generation wins on replay
  }
  store::PlanStore ps(cfg);
  EXPECT_TRUE(ps.persistent());
  EXPECT_EQ(ps.rehydrated(), 3u);
  EXPECT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps.get("plan-a").value(), "{\"result\":3}");
  EXPECT_EQ(ps.get("plan-b").value(), "{\"result\":2}");
  EXPECT_TRUE(ps.replay_warning().empty());
}

TEST(StorePlanStoreTest, IdempotentPutDoesNotGrowTheLog) {
  store::PlanStoreConfig cfg;
  cfg.dir = fresh_dir("noop");
  store::PlanStore ps(cfg);
  ps.put("k", "v");
  const std::uint64_t bytes = [&cfg] {
    store::SegmentLog log = store::SegmentLog::open(cfg.dir);
    return log.bytes();
  }();
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(ps.put("k", "v"));
  store::SegmentLog log = store::SegmentLog::open(cfg.dir);
  EXPECT_EQ(log.bytes(), bytes);
}

TEST(StorePlanStoreTest, CorruptTailCostsOnlyTheTail) {
  store::PlanStoreConfig cfg;
  cfg.dir = fresh_dir("survive");
  {
    store::PlanStore ps(cfg);
    ps.put("keep", "kept");
    ps.put("lose", "lost to the truncation");
  }
  std::ifstream in(first_segment(cfg.dir), std::ios::binary | std::ios::ate);
  const auto size = static_cast<long>(in.tellg());
  in.close();
  ASSERT_EQ(::truncate(first_segment(cfg.dir).c_str(), size - 5), 0);

  store::PlanStore ps(cfg);  // never throws on a corrupt log
  EXPECT_EQ(ps.rehydrated(), 1u);
  EXPECT_EQ(ps.get("keep").value(), "kept");
  EXPECT_FALSE(ps.get("lose").has_value());
  EXPECT_FALSE(ps.replay_warning().empty());
}

TEST(StorePlanStoreTest, CompactionBoundsLogGrowth) {
  store::PlanStoreConfig cfg;
  cfg.dir = fresh_dir("bound");
  cfg.compact_min_bytes = 256;  // tiny thresholds so churn triggers it
  cfg.compact_ratio = 2.0;
  store::PlanStore ps(cfg);
  for (int i = 0; i < 200; ++i)
    ps.put("churn", "generation " + std::to_string(i) +
                        " padded to make the record non-trivial");
  store::SegmentLog log = store::SegmentLog::open(cfg.dir);
  // Without compaction this would be ~200 records; the bound holds it to
  // the live set plus the post-compaction appends.
  EXPECT_LT(log.bytes(), 4096u);
  // And nothing was lost: a restart still sees the newest generation.
  store::PlanStore reopened(cfg);
  EXPECT_NE(reopened.get("churn").value().find("generation 199"),
            std::string::npos);
}

// --------------------------------------------------------------------- ring

TEST(StoreRingTest, ValidatesItsInputs) {
  EXPECT_THROW(store::Ring({}), tilo::util::Error);
  EXPECT_THROW(store::Ring({"a", "b", "a"}), tilo::util::Error);
  EXPECT_THROW(store::Ring({"a"}, 0), tilo::util::Error);
}

TEST(StoreRingTest, RoutingIsDeterministicAcrossInstances) {
  const std::vector<std::string> nodes = {"svc-0", "svc-1", "svc-2"};
  const store::Ring a(nodes), b(nodes);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "problem-" + std::to_string(i);
    EXPECT_EQ(a.route(key), b.route(key));
    EXPECT_EQ(a.sequence(key), b.sequence(key));
  }
}

TEST(StoreRingTest, SequenceVisitsEveryNodeOnceStartingAtTheOwner) {
  const store::Ring ring({"a", "b", "c", "d"});
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::vector<std::size_t> seq = ring.sequence(key);
    ASSERT_EQ(seq.size(), 4u);
    EXPECT_EQ(seq[0], ring.route(key));
    EXPECT_EQ(std::set<std::size_t>(seq.begin(), seq.end()).size(), 4u);
  }
}

TEST(StoreRingTest, LoadSpreadsAcrossNodes) {
  const store::Ring ring({"a", "b", "c"});
  std::map<std::size_t, int> hits;
  const int kKeys = 3000;
  for (int i = 0; i < kKeys; ++i) hits[ring.route("key-" + std::to_string(i))]++;
  ASSERT_EQ(hits.size(), 3u);
  for (const auto& [node, count] : hits)
    EXPECT_GT(count, kKeys / 10) << "node " << node << " starved";
}

TEST(StoreRingTest, RemovingANodeOnlyRemapsItsOwnKeys) {
  const std::vector<std::string> full = {"a", "b", "c", "d"};
  const store::Ring ring(full);
  // Drop node "c"; every key not owned by "c" must keep its owner (the
  // consistent-hashing contract — ~1/N of the space remaps, not all of it).
  std::vector<std::string> reduced;
  for (const std::string& n : full)
    if (n != "c") reduced.push_back(n);
  const store::Ring smaller(reduced);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::string& owner = full[ring.route(key)];
    if (owner == "c") continue;
    EXPECT_EQ(owner, reduced[smaller.route(key)]) << key;
  }
}

TEST(StoreRingTest, FailoverTargetMatchesTheShrunkenRing) {
  // sequence()[1] — where a client fails over to — must be the node the
  // key would route to if the dead owner left the ring entirely.
  const std::vector<std::string> full = {"a", "b", "c"};
  const store::Ring ring(full);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::vector<std::size_t> seq = ring.sequence(key);
    std::vector<std::string> reduced;
    for (std::size_t n = 0; n < full.size(); ++n)
      if (n != seq[0]) reduced.push_back(full[n]);
    const store::Ring shrunk(reduced);
    EXPECT_EQ(full[seq[1]], reduced[shrunk.route(key)]) << key;
  }
}

// -------------------------------------------------------------------- quota

TEST(StoreQuotaTest, DisabledQuotaAdmitsEverything) {
  store::Quota q(store::QuotaConfig{});
  EXPECT_FALSE(q.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(q.try_take("anyone", 0));
  EXPECT_EQ(q.denied(), 0u);
}

TEST(StoreQuotaTest, BucketStartsFullThenDries) {
  store::QuotaConfig cfg;
  cfg.rate = 1.0;
  cfg.burst = 5.0;
  store::Quota q(cfg);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_take("t", 0)) << i;
  EXPECT_FALSE(q.try_take("t", 0));
  EXPECT_EQ(q.admitted(), 5u);
  EXPECT_EQ(q.denied(), 1u);
}

TEST(StoreQuotaTest, RefillIsAnalyticFromCallerTimestamps) {
  store::QuotaConfig cfg;
  cfg.rate = 1.0;  // one token per second
  cfg.burst = 2.0;
  store::Quota q(cfg);
  EXPECT_TRUE(q.try_take("t", 0));
  EXPECT_TRUE(q.try_take("t", 0));
  EXPECT_FALSE(q.try_take("t", 0));
  // Two simulated seconds later the bucket holds two tokens again — and
  // never more than burst, however long the tenant stays idle.
  const i64 later = 2'000'000'000;
  EXPECT_TRUE(q.try_take("t", later));
  EXPECT_TRUE(q.try_take("t", later));
  EXPECT_FALSE(q.try_take("t", later));
  EXPECT_FALSE(q.try_take("t", later + 500'000'000));
  EXPECT_NEAR(q.tokens("t", later + 60'000'000'000), 2.0, 1e-9);
}

TEST(StoreQuotaTest, SharesScaleBothRateAndBurst) {
  store::QuotaConfig cfg;
  cfg.rate = 1.0;
  cfg.burst = 2.0;
  cfg.tenants = {{"gold", 3.0}};
  store::Quota q(cfg);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(q.try_take("gold", 0)) << i;
  EXPECT_FALSE(q.try_take("gold", 0));
  // An undeclared tenant gets share 1.0: burst 2.
  EXPECT_TRUE(q.try_take("bronze", 0));
  EXPECT_TRUE(q.try_take("bronze", 0));
  EXPECT_FALSE(q.try_take("bronze", 0));
}

TEST(StoreQuotaTest, OneTenantsFloodNeverDrainsAnothersBucket) {
  store::QuotaConfig cfg;
  cfg.rate = 1.0;
  cfg.burst = 3.0;
  store::Quota q(cfg);
  for (int i = 0; i < 50; ++i) (void)q.try_take("flood", 0);
  EXPECT_TRUE(q.try_take("quiet", 0));  // unaffected, bucket still full
  EXPECT_EQ(q.denied(), 47u);
}

// ----------------------------------------------------- fair-share restore

TEST(StoreFairShareTest, RestoreRoundTripsUsageAndShares) {
  sched::FairShare a;
  a.set_half_life(0);  // no decay: exact round-trip arithmetic
  a.declare({"acme", 2.0});
  a.charge("acme", 5.0, 1'000);
  a.charge("acme", 2.5, 2'000);
  a.charge("initech", 1.0, 2'000);

  const std::vector<sched::TenantStatus> snapshot = a.statuses(2'000);
  sched::FairShare b;
  b.set_half_life(0);
  b.restore(snapshot, 9'000'000);
  EXPECT_DOUBLE_EQ(b.usage("acme", 9'000'000), 7.5);
  EXPECT_DOUBLE_EQ(b.usage("initech", 9'000'000), 1.0);
  const std::vector<sched::TenantStatus> rows = b.statuses(9'000'000);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "acme");
  EXPECT_DOUBLE_EQ(rows[0].share, 2.0);
  EXPECT_EQ(rows[0].charged_units, 2u);
  // The scheduling signal survives the restart: the factor ordering is
  // the same one the pre-restart scheduler would have used.
  EXPECT_LT(b.factor("acme", 9'000'000), 1.0);
}

TEST(StoreFairShareTest, RestoredUsageResumesDecayFromRestoreTime) {
  sched::FairShare a;
  a.set_half_life(1'000);
  a.charge("t", 8.0, 0);
  sched::FairShare b;
  b.set_half_life(1'000);
  b.restore(a.statuses(0), 50'000);  // restored as-of the restore stamp
  EXPECT_DOUBLE_EQ(b.usage("t", 50'000), 8.0);
  EXPECT_DOUBLE_EQ(b.usage("t", 51'000), 4.0);  // one half-life later
}

namespace fleet = tilo::fleet;
using tilo::pipeline::Json;

fleet::JobArray acct_job(const std::string& tenant, std::size_t base,
                         std::size_t n) {
  fleet::JobArray job;
  job.spec.name = tenant + "-job";
  job.spec.tenant = tenant;
  for (std::size_t i = 0; i < n; ++i)
    job.units.push_back(fleet::WorkUnit{base + i, "{\"toy\":1}"});
  return job;
}

/// Completes every unit of a (never-started) controller by hand over the
/// call_local fast lane, so the fair-share ledger has real completions to
/// snapshot.
void drive_to_completion(fleet::Controller& controller, std::size_t units) {
  svc::Request reg;
  reg.op = svc::Op::kRegister;
  Json body = Json::object();
  body.set("name", Json::string("driver"));
  reg.fleet = std::move(body);
  const svc::Response r = controller.call_local(reg);
  ASSERT_EQ(r.status, svc::RespStatus::kOk) << r.error;
  const i64 worker_id =
      Json::parse(r.result).at("worker_id").as_integer("worker_id");

  std::vector<std::pair<i64, std::string>> completed;
  for (int round = 0; round < 64; ++round) {
    Json poll = Json::object();
    poll.set("worker_id", Json::integer(worker_id));
    poll.set("want", Json::integer(static_cast<i64>(units)));
    Json arr = Json::array();
    for (const auto& [index, result] : completed) {
      Json entry = Json::object();
      entry.set("unit", Json::integer(index));
      entry.set("result", Json::parse(result));
      arr.push(std::move(entry));
    }
    poll.set("completed", std::move(arr));
    svc::Request req;
    req.op = svc::Op::kUnit;
    req.fleet = std::move(poll);
    const svc::Response resp = controller.call_local(req);
    ASSERT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
    completed.clear();
    const Json parsed = Json::parse(resp.result);
    if (parsed.at("done").as_bool("done")) return;
    for (const Json& u : parsed.at("units").as_array("units"))
      completed.emplace_back(u.at("unit").as_integer("unit"),
                             "{\"done\":true}");
  }
  FAIL() << "fleet never reported done";
}

TEST(StoreFairShareTest, ControllerAccountingSurvivesRestart) {
  const std::string dir = fresh_dir("acct");
  // Generation one: tenant "acme" completes three units, "initech" one,
  // then stop() snapshots the standing into the accounting log.
  {
    fleet::ControllerConfig cfg;
    cfg.accounting_dir = dir;
    std::vector<fleet::JobArray> jobs;
    jobs.push_back(acct_job("acme", 0, 3));
    jobs.push_back(acct_job("initech", 3, 1));
    fleet::Controller controller(std::move(cfg), std::move(jobs));
    drive_to_completion(controller, 4);
    controller.stop();
  }
  // Generation two: a fresh controller over the same log.  Its ledger must
  // open with the persisted usage, not a clean slate.
  fleet::ControllerConfig cfg;
  cfg.accounting_dir = dir;
  std::vector<fleet::JobArray> jobs;
  jobs.push_back(acct_job("acme", 0, 1));
  fleet::Controller controller(std::move(cfg), std::move(jobs));
  svc::Request acct;
  acct.op = svc::Op::kAcct;
  const svc::Response resp = controller.call_local(acct);
  ASSERT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
  const Json parsed = Json::parse(resp.result);
  double acme_usage = 0.0;
  i64 acme_units = 0, initech_units = 0;
  for (const Json& t : parsed.at("tenants").as_array("tenants")) {
    const std::string name = t.at("name").as_string("name");
    if (name == "acme") {
      acme_usage = t.at("usage").as_number("usage");
      acme_units = t.at("charged_units").as_integer("charged_units");
    } else if (name == "initech") {
      initech_units = t.at("charged_units").as_integer("charged_units");
    }
  }
  EXPECT_EQ(acme_units, 3);
  EXPECT_EQ(initech_units, 1);
  EXPECT_GT(acme_usage, 2.0);  // 3.0 minus at most a sliver of decay
  controller.stop();
}

TEST(StoreFairShareTest, MissingAccountingDirMeansCleanSlate) {
  fleet::ControllerConfig cfg;  // no accounting_dir
  std::vector<fleet::JobArray> jobs;
  jobs.push_back(acct_job("acme", 0, 1));
  fleet::Controller controller(std::move(cfg), std::move(jobs));
  svc::Request acct;
  acct.op = svc::Op::kAcct;
  const svc::Response resp = controller.call_local(acct);
  ASSERT_EQ(resp.status, svc::RespStatus::kOk) << resp.error;
  const Json parsed = Json::parse(resp.result);
  for (const Json& t : parsed.at("tenants").as_array("tenants"))
    EXPECT_EQ(t.at("charged_units").as_integer("charged_units"), 0);
  controller.stop();
}

// ------------------------------------------------- server with a store

constexpr const char* kQuickSource =
    "FOR i = 0 TO 15\n FOR j = 0 TO 255\n"
    "  Q(i, j) = 0.5 * (Q(i-1, j) + Q(i, j-1))\n ENDFOR\nENDFOR\n";

svc::CompileParams quick_params(std::string name = "quick") {
  svc::CompileParams p;
  p.name = std::move(name);
  p.source = kQuickSource;
  p.procs = tilo::lat::Vec(std::vector<i64>{4, 1});
  p.height = 16;
  return p;
}

TEST(StoreServerTest, RestartedServerAnswersWarmKeysWithoutRecompiling) {
  const std::string dir = fresh_dir("server");
  std::string first_bytes;
  {
    svc::ServerConfig cfg;
    cfg.address = fresh_socket("gen1");
    cfg.workers = 2;
    cfg.store_dir = dir;
    svc::Server server(cfg);
    server.start();
    svc::Client client = svc::Client::connect(cfg.address);
    const svc::Response r = client.compile(quick_params());
    ASSERT_EQ(r.status, svc::RespStatus::kOk) << r.error;
    first_bytes = r.result;
    const svc::ServerStats s = server.stats();
    EXPECT_EQ(s.compiles, 1u);
    EXPECT_EQ(s.store_puts, 1u);
    EXPECT_EQ(s.store_misses, 1u);
    EXPECT_EQ(s.store_rehydrated, 0u);
    server.stop();
  }
  // Generation two: same store directory, fresh process state.  The first
  // warm-key request must be served from the rehydrated store — no
  // compile, byte-identical bytes.
  svc::ServerConfig cfg;
  cfg.address = fresh_socket("gen2");
  cfg.workers = 2;
  cfg.store_dir = dir;
  svc::Server server(cfg);
  server.start();
  ASSERT_NE(server.plan_store(), nullptr);
  EXPECT_GE(server.plan_store()->rehydrated(), 1u);
  svc::Client client = svc::Client::connect(cfg.address);
  const svc::Response r = client.compile(quick_params());
  ASSERT_EQ(r.status, svc::RespStatus::kOk) << r.error;
  EXPECT_EQ(r.result, first_bytes);
  const svc::ServerStats s = server.stats();
  EXPECT_EQ(s.compiles, 0u) << "warm key must not recompile";
  EXPECT_EQ(s.store_hits, 1u);
  EXPECT_GE(s.store_rehydrated, 1u);
  server.stop();
}

TEST(StoreServerTest, QuotaDeniesWithExplicitWireOutcome) {
  svc::ServerConfig cfg;
  cfg.address = fresh_socket("quota");
  cfg.workers = 2;
  cfg.quota.rate = 0.001;  // effectively no refill within the test
  cfg.quota.burst = 2.0;
  svc::Server server(cfg);
  server.start();
  svc::Client client = svc::Client::connect(cfg.address);
  // Distinct problem keys so single-flight cannot merge them.
  ASSERT_EQ(client.compile(quick_params("q0")).status, svc::RespStatus::kOk);
  ASSERT_EQ(client.compile(quick_params("q1")).status, svc::RespStatus::kOk);
  const svc::Response denied = client.compile(quick_params("q2"));
  EXPECT_EQ(denied.status, svc::RespStatus::kQuotaExceeded);
  EXPECT_NE(denied.error.find("quota"), std::string::npos);
  // Pings and stats are never quota-gated.
  EXPECT_EQ(client.ping().status, svc::RespStatus::kOk);
  const svc::ServerStats s = server.stats();
  EXPECT_EQ(s.quota_denied, 1u);
  // The outcome invariant still balances with the new category.
  EXPECT_EQ(s.requests, s.completed + s.shed + s.timed_out + s.failed +
                            s.rejected + s.quota_denied);
  server.stop();
}

TEST(StoreServerTest, QuotaIsPerTenant) {
  svc::ServerConfig cfg;
  cfg.address = fresh_socket("tenants");
  cfg.workers = 2;
  cfg.quota.rate = 0.001;
  cfg.quota.burst = 1.0;
  svc::Server server(cfg);
  server.start();
  svc::Client client = svc::Client::connect(cfg.address);
  auto compile_as = [&client](const std::string& tenant,
                              const std::string& name) {
    svc::Request req;
    req.op = svc::Op::kCompile;
    req.compile = quick_params(name);
    req.tenant = tenant;
    return client.call(std::move(req));
  };
  ASSERT_EQ(compile_as("loud", "l0").status, svc::RespStatus::kOk);
  EXPECT_EQ(compile_as("loud", "l1").status, svc::RespStatus::kQuotaExceeded);
  // The other tenant's bucket is untouched by the flood.
  EXPECT_EQ(compile_as("quiet", "q0").status, svc::RespStatus::kOk);
  server.stop();
}

TEST(StoreServerTest, QuotaExceededRoundTripsTheWire) {
  EXPECT_EQ(svc::status_name(svc::RespStatus::kQuotaExceeded),
            "quota_exceeded");
  EXPECT_EQ(svc::status_from("quota_exceeded"),
            svc::RespStatus::kQuotaExceeded);
  svc::Response resp;
  resp.status = svc::RespStatus::kQuotaExceeded;
  resp.id = 7;
  resp.error = "tenant \"t\" admission quota exhausted";
  const svc::Response back = svc::response_from_wire(svc::response_to_wire(resp));
  EXPECT_EQ(back.status, svc::RespStatus::kQuotaExceeded);
  EXPECT_EQ(back.id, resp.id);
  EXPECT_EQ(back.error, resp.error);
}

// ------------------------------------------------------ replicated tier

struct Replica {
  std::string address;
  std::unique_ptr<svc::Server> server;
};

/// N started replicas, each with its own plan store directory.
std::vector<Replica> start_replicas(int n, const char* tag) {
  std::vector<Replica> replicas;
  for (int i = 0; i < n; ++i) {
    Replica r;
    r.address = fresh_socket(tag);
    svc::ServerConfig cfg;
    cfg.address = r.address;
    cfg.workers = 2;
    cfg.store_dir = fresh_dir(tag);
    r.server = std::make_unique<svc::Server>(cfg);
    r.server->start();
    replicas.push_back(std::move(r));
  }
  return replicas;
}

std::vector<std::string> addresses_of(const std::vector<Replica>& replicas) {
  std::vector<std::string> out;
  for (const Replica& r : replicas) out.push_back(r.address);
  return out;
}

TEST(StoreRingClientTest, EveryReplicaServesByteIdenticalResults) {
  std::vector<Replica> replicas = start_replicas(3, "ident");
  svc::RingClient ring(addresses_of(replicas));
  const svc::CompileParams params = quick_params("ring");

  const svc::Response routed = ring.compile(params);
  ASSERT_EQ(routed.status, svc::RespStatus::kOk) << routed.error;
  ASSERT_FALSE(routed.result.empty());
  // Ask every replica directly — including the two that each compile the
  // key for the first time themselves — and require the exact same bytes.
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    svc::Request req;
    req.op = svc::Op::kCompile;
    req.compile = params;
    const svc::Response direct = ring.call_replica(i, std::move(req));
    ASSERT_EQ(direct.status, svc::RespStatus::kOk) << direct.error;
    EXPECT_EQ(direct.result, routed.result) << "replica " << i;
  }
  for (Replica& r : replicas) r.server->stop();
}

TEST(StoreRingClientTest, FailsOverToTheNextArcOwner) {
  // Decide the ring first, then only start the NON-owners: the owner is
  // "down" from the very first dial, so compile() must fail over.
  std::vector<std::string> addrs;
  for (int i = 0; i < 3; ++i) addrs.push_back(fresh_socket("failover"));
  const svc::CompileParams params = quick_params("failover");
  const store::Ring plain(addrs);
  const std::size_t owner = plain.route(svc::problem_key(params));

  std::vector<std::unique_ptr<svc::Server>> live;
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    if (i == owner) continue;
    svc::ServerConfig cfg;
    cfg.address = addrs[i];
    cfg.workers = 2;
    live.push_back(std::make_unique<svc::Server>(cfg));
    live.back()->start();
  }

  svc::RingClient ring(addrs);
  const svc::Response r = ring.compile(params);
  ASSERT_EQ(r.status, svc::RespStatus::kOk) << r.error;
  EXPECT_GE(ring.failovers(), 1u);
  EXPECT_FALSE(r.result.empty());
  for (auto& s : live) s->stop();
}

TEST(StoreRingClientTest, AllReplicasDownThrowsWithContext) {
  std::vector<std::string> addrs = {fresh_socket("down"),
                                    fresh_socket("down")};
  svc::RingClient ring(addrs);
  EXPECT_THROW(ring.compile(quick_params("nobody")), tilo::util::Error);
}

}  // namespace
