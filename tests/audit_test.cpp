// Tests the critical-path audit and uses it as an invariant over many
// random plans: the simulator can never beat the contention-free lower
// bound, under any schedule, level, network or protocol.
#include <gtest/gtest.h>

#include "tilo/exec/audit.hpp"
#include "tilo/exec/run.hpp"
#include "tilo/loopnest/workloads.hpp"
#include "tilo/util/rng.hpp"

using namespace tilo;
using lat::Vec;
using loop::LoopNest;
using sched::ScheduleKind;
using util::i64;

TEST(AuditTest, SingleRankBoundIsPureCompute) {
  const LoopNest nest = loop::stencil3d_nest(4, 4, 16);
  const exec::TilePlan plan = exec::make_plan_with_procs(
      nest, tile::RectTiling(Vec{4, 4, 4}), ScheduleKind::kOverlap,
      Vec{1, 1, 1});
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  // One rank, one column: the k-chain serializes all compute.
  EXPECT_NEAR(exec::critical_path_lower_bound(plan, p),
              static_cast<double>(nest.iterations()) * p.t_c, 1e-12);
}

TEST(AuditTest, CrossRankChainAddsPipelines) {
  // 2 ranks, tiles 4x4x(whole k): the second rank starts after the first
  // tile's message; hand-check the bound.
  const LoopNest nest = loop::stencil3d_nest(8, 4, 4);
  const exec::TilePlan plan = exec::make_plan_explicit(
      nest, tile::RectTiling(Vec{4, 4, 4}), ScheduleKind::kOverlap, 2,
      Vec{2, 1, 1});
  mach::MachineParams p;
  p.t_c = 1e-6;
  p.t_t = 0.5e-6;
  p.bytes_per_element = 4;
  p.wire_latency = 10e-6;
  p.fill_kernel_buffer = mach::AffineCost{20e-6, 0.0};
  p.fill_mpi_buffer = mach::AffineCost{20e-6, 0.0};
  const double comp = 64.0 * p.t_c;          // one 4x4x4 tile
  const double bytes = 4.0 * 16.0;           // face 4x4 floats
  const double pipe = 2 * 20e-6 + 0.5e-6 * bytes + 10e-6;
  EXPECT_NEAR(exec::critical_path_lower_bound(plan, p),
              comp + pipe + comp, 1e-9);
}

TEST(AuditTest, SimulationNeverBeatsTheBound) {
  util::Rng rng(31);
  for (int iter = 0; iter < 10; ++iter) {
    loop::RandomNestOptions opts;
    opts.dims = 3;
    opts.num_deps = static_cast<std::size_t>(rng.uniform(1, 3));
    opts.max_dep_component = 1;
    opts.min_extent = 8;
    opts.max_extent = 16;
    opts.nonneg_deps = true;
    const LoopNest nest = loop::random_nest(rng, opts);
    Vec sides(3);
    Vec procs(3, 1);
    for (std::size_t d = 0; d < 3; ++d)
      sides[d] = rng.uniform(2, 5);
    const std::size_t md = static_cast<std::size_t>(rng.uniform(0, 2));
    for (std::size_t d = 0; d < 3; ++d) {
      if (d == md) continue;
      const i64 cols = util::ceil_div(nest.domain().extent(d), sides[d]);
      procs[d] = rng.uniform(1, std::min<i64>(cols, 2));
    }
    const mach::MachineParams p = mach::MachineParams::paper_cluster();
    for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
      const exec::TilePlan plan = exec::make_plan_explicit(
          nest, tile::RectTiling(sides), kind, md, procs);
      const double bound = exec::critical_path_lower_bound(plan, p);
      const double sim = exec::run_plan(nest, plan, p).seconds;
      EXPECT_GE(sim, bound * (1.0 - 1e-9))
          << "iter " << iter << " kind " << static_cast<int>(kind);
    }
  }
}

TEST(AuditTest, BoundHoldsAcrossConfigurations) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 64);
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  const exec::TilePlan plan = exec::make_plan(
      nest, tile::RectTiling(Vec{4, 4, 8}), ScheduleKind::kOverlap);
  const double bound = exec::critical_path_lower_bound(plan, p);
  for (auto level : {mach::OverlapLevel::kDma,
                     mach::OverlapLevel::kDuplexDma}) {
    for (auto network : {msg::Network::kSwitched, msg::Network::kSharedBus}) {
      for (auto protocol : {msg::Protocol::kEager,
                            msg::Protocol::kRendezvous}) {
        exec::RunOptions opts;
        opts.comm.level = level;
        opts.comm.network = network;
        opts.comm.protocol = protocol;
        const double sim = exec::run_plan(nest, plan, p, opts).seconds;
        EXPECT_GE(sim, bound * (1.0 - 1e-9));
        EXPECT_LT(sim, bound * 50);  // sanity: not absurdly inflated
      }
    }
  }
}

TEST(AuditTest, PaperOptimaSitCloseToTheBound) {
  // At the tuned grain the overlapping schedule runs within ~2x of the
  // contention-free bound — the pipeline is doing its job.
  const LoopNest nest = loop::paper_space_i();
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  const exec::TilePlan plan = exec::make_plan(
      nest, tile::RectTiling(Vec{4, 4, 223}), ScheduleKind::kOverlap);
  const double bound = exec::critical_path_lower_bound(plan, p);
  const double sim = exec::run_plan(nest, plan, p).seconds;
  EXPECT_GE(sim, bound);
  EXPECT_LT(sim, 2.5 * bound);
}
