// Configuration-matrix property suite: functional correctness must hold
// for every combination of overlap level, network model and protocol —
// machine configuration may change *timing*, never *values*.
#include <gtest/gtest.h>

#include <tuple>

#include "tilo/exec/run.hpp"
#include "tilo/loopnest/workloads.hpp"

using namespace tilo;
using lat::Vec;
using loop::LoopNest;
using mach::OverlapLevel;
using msg::Network;
using msg::Protocol;
using sched::ScheduleKind;

namespace {

mach::MachineParams varied_params() {
  mach::MachineParams p;
  p.t_c = 0.7e-6;
  p.t_t = 0.09e-6;
  p.bytes_per_element = 8;
  p.wire_latency = 12e-6;
  p.fill_mpi_buffer = mach::AffineCost{21e-6, 3e-9};
  p.fill_kernel_buffer = mach::AffineCost{17e-6, 2e-9};
  return p;
}

}  // namespace

using Config = std::tuple<OverlapLevel, Network, Protocol>;

class ConfigMatrixTest : public ::testing::TestWithParam<Config> {};

TEST_P(ConfigMatrixTest, OverlapScheduleValuesInvariant) {
  const auto [level, network, protocol] = GetParam();
  const LoopNest nest = loop::stencil3d_nest(8, 8, 24);
  const exec::TilePlan plan = exec::make_plan(
      nest, tile::RectTiling(Vec{4, 4, 6}), ScheduleKind::kOverlap);
  exec::RunOptions opts;
  opts.functional = true;
  opts.comm.level = level;
  opts.comm.network = network;
  opts.comm.protocol = protocol;
  const exec::RunResult run =
      exec::run_plan(nest, plan, varied_params(), opts);
  const loop::DenseField ref = loop::run_sequential(nest);
  EXPECT_DOUBLE_EQ(loop::max_abs_diff(*run.field, ref), 0.0);
}

TEST_P(ConfigMatrixTest, TimingDeterministicPerConfig) {
  const auto [level, network, protocol] = GetParam();
  const LoopNest nest = loop::stencil3d_nest(8, 8, 48);
  const exec::TilePlan plan = exec::make_plan(
      nest, tile::RectTiling(Vec{4, 4, 8}), ScheduleKind::kOverlap);
  exec::RunOptions opts;
  opts.comm.level = level;
  opts.comm.network = network;
  opts.comm.protocol = protocol;
  const auto a = exec::run_plan(nest, plan, varied_params(), opts);
  const auto b = exec::run_plan(nest, plan, varied_params(), opts);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages, b.messages);
}

namespace {

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  const OverlapLevel level = std::get<0>(info.param);
  const Network network = std::get<1>(info.param);
  const Protocol protocol = std::get<2>(info.param);
  std::string name = level == OverlapLevel::kDma ? "dma" : "duplex";
  name += network == Network::kSwitched ? "_switch" : "_bus";
  name += protocol == Protocol::kEager ? "_eager" : "_rdv";
  return name;
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ConfigMatrixTest,
    ::testing::Combine(
        ::testing::Values(OverlapLevel::kDma, OverlapLevel::kDuplexDma),
        ::testing::Values(Network::kSwitched, Network::kSharedBus),
        ::testing::Values(Protocol::kEager, Protocol::kRendezvous)),
    config_name);

class BlockingConfigTest
    : public ::testing::TestWithParam<Network> {};

TEST_P(BlockingConfigTest, NonOverlapScheduleValuesInvariant) {
  const LoopNest nest = loop::stencil3d_nest(8, 8, 24);
  const exec::TilePlan plan = exec::make_plan(
      nest, tile::RectTiling(Vec{4, 4, 6}), ScheduleKind::kNonOverlap);
  exec::RunOptions opts;
  opts.functional = true;
  opts.comm.network = GetParam();
  const exec::RunResult run =
      exec::run_plan(nest, plan, varied_params(), opts);
  EXPECT_DOUBLE_EQ(
      loop::max_abs_diff(*run.field, loop::run_sequential(nest)), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Networks, BlockingConfigTest,
                         ::testing::Values(Network::kSwitched,
                                           Network::kSharedBus));
