/* A miniature multi-process MPI for testing tilo-generated programs.
 *
 * MPI_Init forks TILO_STUB_RANKS-1 children; every ordered rank pair gets
 * a socketpair created before the fork, so point-to-point sends are plain
 * framed writes.  Unexpected tags are stashed per source, (src, tag)
 * streams stay FIFO — the subset of MPI semantics the generated ProcB and
 * ProcNB programs rely on.  Message sizes must fit the socket buffer
 * (eager semantics); the tests keep them small.
 *
 * Test-only code: C99, single translation unit, no error beautification.
 */
#ifndef TILO_STUB_MPI_FORK_H
#define TILO_STUB_MPI_FORK_H

#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

typedef int MPI_Comm;
typedef int MPI_Request;
typedef int MPI_Status;
typedef int MPI_Datatype;
typedef int MPI_Op;
#define MPI_COMM_WORLD 0
#define MPI_FLOAT 4
#define MPI_DOUBLE 8
#define MPI_SUM 1
#define MPI_STATUS_IGNORE ((MPI_Status *)0)
#define MPI_STATUSES_IGNORE ((MPI_Status *)0)

#define TILO_MAX_RANKS 16
#define TILO_MAX_PENDING 64
#define TILO_REDUCE_TAG (-12345)

static int tilo_rank_ = 0;
static int tilo_size_ = 1;
/* tilo_fd_[src][dst]: write end used by src, read end used by dst. */
static int tilo_wfd_[TILO_MAX_RANKS][TILO_MAX_RANKS];
static int tilo_rfd_[TILO_MAX_RANKS][TILO_MAX_RANKS];
static pid_t tilo_children_[TILO_MAX_RANKS];

/* Stash of messages read while looking for another tag. */
typedef struct {
  int src;
  int tag;
  long bytes;
  char *data;
} TiloStash;
static TiloStash tilo_stash_[TILO_MAX_PENDING];
static int tilo_stash_count_ = 0;

/* Deferred nonblocking receives, fulfilled at MPI_Waitall. */
typedef struct {
  void *buf;
  long bytes;
  int src;
  int tag;
  int active;
} TiloIrecv;
static TiloIrecv tilo_irecv_[TILO_MAX_PENDING];
static int tilo_irecv_count_ = 0;

static void tilo_write_all(int fd, const void *buf, long n) {
  const char *p = (const char *)buf;
  while (n > 0) {
    ssize_t w = write(fd, p, (size_t)n);
    if (w <= 0) {
      perror("stub-mpi write");
      _exit(3);
    }
    p += w;
    n -= w;
  }
}

static void tilo_read_all(int fd, void *buf, long n) {
  char *p = (char *)buf;
  while (n > 0) {
    ssize_t r = read(fd, p, (size_t)n);
    if (r <= 0) {
      perror("stub-mpi read");
      _exit(4);
    }
    p += r;
    n -= r;
  }
}

static long tilo_type_size(MPI_Datatype t) {
  return t == MPI_DOUBLE ? 8 : 4;
}

static int MPI_Init(int *argc, char ***argv) {
  (void)argc;
  (void)argv;
  const char *env = getenv("TILO_STUB_RANKS");
  tilo_size_ = env ? atoi(env) : 1;
  if (tilo_size_ < 1 || tilo_size_ > TILO_MAX_RANKS) tilo_size_ = 1;

  for (int s = 0; s < tilo_size_; ++s) {
    for (int d = 0; d < tilo_size_; ++d) {
      if (s == d) continue;
      int sv[2];
      if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        perror("stub-mpi socketpair");
        exit(5);
      }
      tilo_wfd_[s][d] = sv[0];
      tilo_rfd_[s][d] = sv[1];
    }
  }
  for (int r = 1; r < tilo_size_; ++r) {
    pid_t pid = fork();
    if (pid < 0) {
      perror("stub-mpi fork");
      exit(6);
    }
    if (pid == 0) {
      tilo_rank_ = r;
      break;
    }
    tilo_children_[r] = pid;
  }
  return 0;
}

static int MPI_Comm_rank(MPI_Comm c, int *r) {
  (void)c;
  *r = tilo_rank_;
  return 0;
}

static int MPI_Comm_size(MPI_Comm c, int *s) {
  (void)c;
  *s = tilo_size_;
  return 0;
}

static int MPI_Abort(MPI_Comm c, int code) {
  (void)c;
  _exit(code);
  return 0;
}

static int MPI_Send(const void *buf, int count, MPI_Datatype t, int dst,
                    int tag, MPI_Comm c) {
  (void)c;
  long header[2];
  header[0] = tag;
  header[1] = (long)count * tilo_type_size(t);
  tilo_write_all(tilo_wfd_[tilo_rank_][dst], header, sizeof header);
  tilo_write_all(tilo_wfd_[tilo_rank_][dst], buf, header[1]);
  return 0;
}

/* Reads messages from `src` until one with `tag` appears; stashes others. */
static void tilo_recv_tag(void *buf, long bytes, int src, int tag) {
  /* Check the stash first (FIFO per (src, tag)). */
  for (int i = 0; i < tilo_stash_count_; ++i) {
    if (tilo_stash_[i].src == src && tilo_stash_[i].tag == tag) {
      if (tilo_stash_[i].bytes != bytes) {
        fprintf(stderr, "stub-mpi: size mismatch on stash\n");
        _exit(7);
      }
      memcpy(buf, tilo_stash_[i].data, (size_t)bytes);
      free(tilo_stash_[i].data);
      for (int j = i + 1; j < tilo_stash_count_; ++j)
        tilo_stash_[j - 1] = tilo_stash_[j];
      --tilo_stash_count_;
      return;
    }
  }
  for (;;) {
    long header[2];
    tilo_read_all(tilo_rfd_[src][tilo_rank_], header, sizeof header);
    if (header[0] == tag) {
      if (header[1] != bytes) {
        fprintf(stderr, "stub-mpi: size mismatch on wire\n");
        _exit(8);
      }
      tilo_read_all(tilo_rfd_[src][tilo_rank_], buf, bytes);
      return;
    }
    if (tilo_stash_count_ >= TILO_MAX_PENDING) {
      fprintf(stderr, "stub-mpi: stash overflow\n");
      _exit(9);
    }
    TiloStash *st = &tilo_stash_[tilo_stash_count_++];
    st->src = src;
    st->tag = (int)header[0];
    st->bytes = header[1];
    st->data = (char *)malloc((size_t)header[1]);
    tilo_read_all(tilo_rfd_[src][tilo_rank_], st->data, header[1]);
  }
}

static int MPI_Recv(void *buf, int count, MPI_Datatype t, int src, int tag,
                    MPI_Comm c, MPI_Status *s) {
  (void)c;
  (void)s;
  tilo_recv_tag(buf, (long)count * tilo_type_size(t), src, tag);
  return 0;
}

/* Eager: the data is small enough for the socket buffer, send now. */
static int MPI_Isend(const void *buf, int count, MPI_Datatype t, int dst,
                     int tag, MPI_Comm c, MPI_Request *req) {
  *req = -1; /* nothing to wait for */
  return MPI_Send(buf, count, t, dst, tag, c);
}

static int MPI_Irecv(void *buf, int count, MPI_Datatype t, int src, int tag,
                     MPI_Comm c, MPI_Request *req) {
  (void)c;
  if (tilo_irecv_count_ >= TILO_MAX_PENDING) {
    fprintf(stderr, "stub-mpi: too many pending irecvs\n");
    _exit(10);
  }
  TiloIrecv *r = &tilo_irecv_[tilo_irecv_count_];
  r->buf = buf;
  r->bytes = (long)count * tilo_type_size(t);
  r->src = src;
  r->tag = tag;
  r->active = 1;
  *req = tilo_irecv_count_++;
  return 0;
}

static int MPI_Waitall(int n, MPI_Request *reqs, MPI_Status *st) {
  (void)st;
  for (int i = 0; i < n; ++i) {
    if (reqs[i] < 0) continue; /* completed isend */
    TiloIrecv *r = &tilo_irecv_[reqs[i]];
    if (!r->active) continue;
    tilo_recv_tag(r->buf, r->bytes, r->src, r->tag);
    r->active = 0;
  }
  /* Compact the table when everything drained. */
  int live = 0;
  for (int i = 0; i < tilo_irecv_count_; ++i)
    if (tilo_irecv_[i].active) live = 1;
  if (!live) tilo_irecv_count_ = 0;
  return 0;
}

static int MPI_Reduce(const void *in, void *out, int n, MPI_Datatype t,
                      MPI_Op op, int root, MPI_Comm c) {
  (void)op;
  (void)c;
  if (t != MPI_DOUBLE || root != 0) {
    fprintf(stderr, "stub-mpi: only MPI_DOUBLE sum to root 0\n");
    _exit(11);
  }
  if (tilo_rank_ != 0) {
    long header[2];
    header[0] = TILO_REDUCE_TAG;
    header[1] = (long)n * 8;
    tilo_write_all(tilo_wfd_[tilo_rank_][0], header, sizeof header);
    tilo_write_all(tilo_wfd_[tilo_rank_][0], in, header[1]);
    return 0;
  }
  double *acc = (double *)out;
  memcpy(acc, in, (size_t)n * 8);
  double *tmp = (double *)malloc((size_t)n * 8);
  for (int r = 1; r < tilo_size_; ++r) {
    tilo_recv_tag(tmp, (long)n * 8, r, TILO_REDUCE_TAG);
    for (int i = 0; i < n; ++i) acc[i] += tmp[i];
  }
  free(tmp);
  return 0;
}

static int MPI_Finalize(void) {
  if (tilo_rank_ != 0) _exit(0);
  int failed = 0;
  for (int r = 1; r < tilo_size_; ++r) {
    int status = 0;
    waitpid(tilo_children_[r], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) failed = 1;
  }
  if (failed) {
    fprintf(stderr, "stub-mpi: a child rank failed\n");
    exit(12);
  }
  return 0;
}

#endif /* TILO_STUB_MPI_FORK_H */
