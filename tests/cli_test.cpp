// End-to-end smoke tests of the tilo_cli driver binary: exercises the
// parse -> plan -> simulate -> report pipeline exactly as a user would.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "tilo/machine/model.hpp"
#include "tilo/sched/fleet_policy.hpp"
#include "tilo/workload/workload.hpp"

#ifndef TILO_CLI_PATH
#error "TILO_CLI_PATH must be defined by the build"
#endif

namespace {

// The CLI's documented exit codes (examples/tilo_cli.cpp).
constexpr int kExitUsage = 2;
constexpr int kExitFileIo = 3;
constexpr int kExitBadInput = 4;
constexpr int kExitService = 5;
constexpr int kExitUnknownModel = 6;
constexpr int kExitModelFile = 7;

/// Runs the CLI with `args`, captures stdout+stderr, returns {exit, output}.
/// The exit status is decoded with WEXITSTATUS so tests can assert the
/// CLI's documented exit codes exactly.
std::pair<int, std::string> run_cli(const std::string& args) {
  static int counter = 0;
  // ctest runs each discovered test as its own process, all of which start
  // counter at 0 — the pid keeps parallel tests off each other's files.
  const std::string out_path = ::testing::TempDir() + "tilo_cli_out_" +
                               std::to_string(::getpid()) + "_" +
                               std::to_string(counter++) + ".txt";
  const std::string cmd = std::string(TILO_CLI_PATH) + " " + args + " > " +
                          out_path + " 2>&1";
  const int raw = std::system(cmd.c_str());
  const int rc = WIFEXITED(raw) ? WEXITSTATUS(raw) : raw;
  std::ifstream in(out_path);
  std::ostringstream body;
  body << in.rdbuf();
  return {rc, body.str()};
}

}  // namespace

TEST(CliTest, DefaultRunReportsBothSchedules) {
  const auto [rc, out] = run_cli("--height 64");
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("non-overlapping:"), std::string::npos) << out;
  EXPECT_NE(out.find("overlapping:"), std::string::npos);
  EXPECT_NE(out.find("tile height V = 64"), std::string::npos);
}

TEST(CliTest, ValidateFlagChecksValues) {
  const auto [rc, out] = run_cli("--height 64 --validate");
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("max |err| = 0"), std::string::npos) << out;
}

TEST(CliTest, NestFileIsParsed) {
  const std::string nest_path = ::testing::TempDir() + "cli_nest.loop";
  {
    std::ofstream os(nest_path);
    os << "FOR i = 0 TO 31\n FOR j = 0 TO 255\n"
          "  B(i, j) = 0.5 * (B(i-1, j) + B(i, j-1))\n ENDFOR\nENDFOR\n";
  }
  const auto [rc, out] =
      run_cli(nest_path + " --procs 4x1 --height 16 --validate");
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("nest 'B'"), std::string::npos) << out;
  EXPECT_NE(out.find("max |err| = 0"), std::string::npos);
}

TEST(CliTest, EmitCPrintsProgram) {
  const auto [rc, out] = run_cli("--height 64 --emit-c");
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("#include <mpi.h>"), std::string::npos);
  EXPECT_NE(out.find("MPI_Isend"), std::string::npos);
}

TEST(CliTest, AnalyticDefaultHeight) {
  const auto [rc, out] = run_cli("--schedule overlap");
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("(analytic optimum)"), std::string::npos) << out;
  EXPECT_EQ(out.find("non-overlapping:"), std::string::npos);
}

TEST(CliTest, AutoPlannerChoosesGrid) {
  const auto [rc, out] = run_cli("--auto 16 --schedule overlap");
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("planner chose grid (4, 4, 1)"), std::string::npos)
      << out;
}

TEST(CliTest, EmitLoopRoundTripsThroughTheCli) {
  // Serialize the built-in demo back to grammar form, feed it back in.
  const auto [rc, out] = run_cli("--height 64 --schedule overlap --emit-loop");
  EXPECT_EQ(rc, 0) << out;
  const auto pos = out.find("FOR i1 = 0 TO 15");
  ASSERT_NE(pos, std::string::npos) << out;
  const std::string nest_path = ::testing::TempDir() + "cli_roundtrip.loop";
  {
    std::ofstream os(nest_path);
    os << out.substr(pos);
  }
  const auto [rc2, out2] =
      run_cli(nest_path + " --height 64 --schedule overlap --validate");
  EXPECT_EQ(rc2, 0) << out2;
  EXPECT_NE(out2.find("max |err| = 0"), std::string::npos) << out2;
}

TEST(CliTest, UsageListsEveryFlag) {
  // The usage text is generated from the same flag table the parser uses,
  // so no flag can go undocumented (--auto and --emit-loop once were).
  const auto [rc, out] = run_cli("--no-such-flag");
  EXPECT_NE(rc, 0);
  for (const char* flag :
       {"--procs", "--auto", "--height", "--schedule", "--sweep", "--gantt",
        "--emit-c", "--emit-loop", "--validate", "--trace", "--report",
        "--pipeline", "--save-plan", "--load-plan", "--scenario",
        "--machine", "--model", "--calibrate", "--list-models",
        "--list-workloads", "--fleet-credit", "--fleet-heartbeat",
        "--fleet-miss-threshold", "--fleet-speculate-after",
        "--fleet-policy", "--fleet-tenant", "--fleet-priority",
        "--fleet-queue", "--fleet-accounting"})
    EXPECT_NE(out.find(flag), std::string::npos) << flag << "\n" << out;
}

TEST(CliTest, PipelineFlagPrintsStageLog) {
  const auto [rc, out] = run_cli("--height 64 --schedule overlap --pipeline");
  EXPECT_EQ(rc, 0) << out;
  for (const char* stage : {"Frontend", "Analysis", "Tiling", "Scheduling",
                            "Lowering", "Backend"})
    EXPECT_NE(out.find(stage), std::string::npos) << stage << "\n" << out;
}

/// Extracts the "overlapping: ..." completion line from CLI output.
std::string overlap_line(const std::string& out) {
  const auto pos = out.find("overlapping:");
  if (pos == std::string::npos) return "";
  return out.substr(pos, out.find('\n', pos) - pos);
}

TEST(CliTest, SavedPlanReplaysBitIdentically) {
  const std::string plan_path = ::testing::TempDir() + "cli_plan.json";
  const auto [rc, out] =
      run_cli("--height 64 --schedule overlap --save-plan " + plan_path);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("plan written to"), std::string::npos) << out;
  const auto [rc2, out2] = run_cli("--load-plan " + plan_path + " --report");
  EXPECT_EQ(rc2, 0) << out2;
  // The replayed run reproduces the saved run's completion line
  // byte-for-byte (simulated seconds, P(g) and prediction all match).
  ASSERT_FALSE(overlap_line(out).empty()) << out;
  EXPECT_EQ(overlap_line(out), overlap_line(out2)) << out2;
  // And the A/B phase report renders from the replayed run.
  EXPECT_NE(out2.find("rank"), std::string::npos) << out2;
}

TEST(CliTest, ScenarioCompilesAllWorkloadsInOneInvocation) {
  const std::string scn_path = ::testing::TempDir() + "cli_scenario.json";
  {
    std::ofstream os(scn_path);
    os << R"({"tilo": "scenario", "version": 1, "workloads": [
      {"name": "a", "source": "FOR i = 0 TO 15\n FOR j = 0 TO 255\n  A(i, j) = 0.5 * (A(i-1, j) + A(i, j-1))\n ENDFOR\nENDFOR\n",
       "procs": [4, 1], "height": 16},
      {"name": "b", "source": "FOR i = 0 TO 15\n FOR j = 0 TO 255\n  B(i, j) = 0.5 * (B(i-1, j) + B(i, j-1))\n ENDFOR\nENDFOR\n",
       "procs": [2, 1], "height": 32, "schedule": "nonoverlap"},
      {"name": "c", "source": "FOR i = 0 TO 15\n FOR j = 0 TO 255\n  C(i, j) = 0.5 * (C(i-1, j) + C(i, j-1))\n ENDFOR\nENDFOR\n",
       "auto_procs": 4}]})";
  }
  const auto [rc, out] = run_cli("--scenario " + scn_path);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("3 workload(s)"), std::string::npos) << out;
  for (const char* name : {"[a]", "[b]", "[c]"})
    EXPECT_NE(out.find(name), std::string::npos) << name << "\n" << out;
  EXPECT_NE(out.find("Backend     simulated"), std::string::npos) << out;
}

TEST(CliTest, BadSourceFailsWithDiagnostic) {
  const std::string nest_path = ::testing::TempDir() + "cli_bad.loop";
  {
    std::ofstream os(nest_path);
    os << "FOR i = 0 TO 9\n A(i) = A(i+1)\nENDFOR\n";
  }
  const auto [rc, out] = run_cli(nest_path);
  EXPECT_EQ(rc, kExitBadInput) << out;
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
}

TEST(CliTest, UnknownFlagIsAUsageError) {
  const auto [rc, out] = run_cli("--no-such-flag");
  EXPECT_EQ(rc, kExitUsage) << out;
}

TEST(CliTest, MissingScenarioFileIsAFileIoError) {
  const auto [rc, out] = run_cli("--scenario " + ::testing::TempDir() +
                                 "no_such_scenario.json");
  EXPECT_EQ(rc, kExitFileIo) << out;
  EXPECT_NE(out.find("cannot open scenario file"), std::string::npos) << out;
}

TEST(CliTest, MissingPlanFileIsAFileIoError) {
  const auto [rc, out] =
      run_cli("--load-plan " + ::testing::TempDir() + "no_such_plan.json");
  EXPECT_EQ(rc, kExitFileIo) << out;
  EXPECT_NE(out.find("cannot open plan file"), std::string::npos) << out;
}

TEST(CliTest, MalformedPlanFileIsABadInputError) {
  const std::string path = ::testing::TempDir() + "cli_garbage_plan.json";
  {
    std::ofstream os(path);
    os << "this is not a plan bundle";
  }
  const auto [rc, out] = run_cli("--load-plan " + path);
  EXPECT_EQ(rc, kExitBadInput) << out;
  EXPECT_NE(out.find("invalid plan file"), std::string::npos) << out;
  // The message tells the user where valid plan files come from.
  EXPECT_NE(out.find("--save-plan"), std::string::npos) << out;
}

TEST(CliTest, MalformedScenarioFileIsABadInputError) {
  const std::string path = ::testing::TempDir() + "cli_garbage_scenario.json";
  {
    std::ofstream os(path);
    os << R"({"tilo": "scenario", "version": 1, "workloads": [{"name": "x"}]})";
  }
  const auto [rc, out] = run_cli("--scenario " + path);
  EXPECT_EQ(rc, kExitBadInput) << out;
  EXPECT_NE(out.find("invalid scenario file"), std::string::npos) << out;
}

TEST(CliTest, ConnectWithoutServerIsAServiceError) {
  const std::string sock = ::testing::TempDir() + "cli_no_server.sock";
  const auto [rc, out] = run_cli("--connect unix:" + sock + " --ping");
  EXPECT_EQ(rc, kExitService) << out;
  EXPECT_NE(out.find("cannot connect"), std::string::npos) << out;
  // Actionable: the message suggests how to start a server.
  EXPECT_NE(out.find("--serve"), std::string::npos) << out;
}

TEST(CliTest, ServeConnectStopRoundTrip) {
  const std::string sock = ::testing::TempDir() + "cli_svc.sock";
  const std::string log = ::testing::TempDir() + "cli_svc_serve.log";
  std::remove(sock.c_str());
  // Background the server through the shell; run_cli would block on it.
  const std::string serve_cmd = std::string(TILO_CLI_PATH) + " --serve unix:" +
                                sock + " --workers 2 > " + log + " 2>&1 &";
  ASSERT_EQ(std::system(serve_cmd.c_str()), 0);

  // Wait for the server to accept pings (it may still be binding).
  int ping_rc = -1;
  std::string ping_out;
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::tie(ping_rc, ping_out) =
        run_cli("--connect unix:" + sock + " --ping");
    if (ping_rc == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_EQ(ping_rc, 0) << ping_out;
  EXPECT_NE(ping_out.find("pong"), std::string::npos) << ping_out;
  // --ping renders the stats op's queue high-water mark and plan-cache
  // hit/miss counters alongside the round-trip time.
  EXPECT_NE(ping_out.find("queue"), std::string::npos) << ping_out;
  EXPECT_NE(ping_out.find("peak"), std::string::npos) << ping_out;
  EXPECT_NE(ping_out.find("plan cache"), std::string::npos) << ping_out;

  // A remote compile renders the same report shape as a local run.
  const auto [rc, out] = run_cli("--connect unix:" + sock + " --height 64");
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("compiled by unix:" + sock), std::string::npos) << out;
  EXPECT_NE(out.find("non-overlapping:"), std::string::npos) << out;
  EXPECT_NE(out.find("overlapping:"), std::string::npos) << out;
  EXPECT_NE(out.find("tile height V = 64"), std::string::npos) << out;

  // --stop drains the server: it answers everything in flight, writes its
  // run summary, and exits.
  const auto [stop_rc, stop_out] =
      run_cli("--connect unix:" + sock + " --stop");
  EXPECT_EQ(stop_rc, 0) << stop_out;
  EXPECT_NE(stop_out.find("draining"), std::string::npos) << stop_out;
  std::string log_body;
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::ifstream in(log);
    std::ostringstream body;
    body << in.rdbuf();
    log_body = body.str();
    if (log_body.find("svc summary") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_NE(log_body.find("svc summary"), std::string::npos) << log_body;
  EXPECT_NE(log_body.find("requests"), std::string::npos) << log_body;
}

TEST(CliTest, VersionPrintsBinaryAndEnvelopeVersions) {
  const auto [rc, out] = run_cli("--version");
  EXPECT_EQ(rc, 0) << out;
  // Binary version, then one line per wire/serialization envelope.
  EXPECT_NE(out.find("tilo_cli "), std::string::npos) << out;
  EXPECT_NE(out.find("svc wire protocol"), std::string::npos) << out;
  EXPECT_NE(out.find("plan/scenario schema"), std::string::npos) << out;
  EXPECT_NE(out.find("fleet unit/result"), std::string::npos) << out;
  // Every envelope this build speaks is version 1.
  EXPECT_NE(out.find("v1"), std::string::npos) << out;
}

TEST(CliTest, ListModelsPrintsTheMachineModelRegistry) {
  // Generated from mach::model_names(), so a newly registered model
  // cannot go unlisted (the same drift-proofing as the usage text).
  const auto [rc, out] = run_cli("--list-models");
  EXPECT_EQ(rc, 0) << out;
  for (const std::string& name : tilo::mach::model_names())
    EXPECT_NE(out.find(name), std::string::npos) << name << "\n" << out;
}

TEST(CliTest, ListWorkloadsPrintsEveryKindWithDescriptions) {
  const auto [rc, out] = run_cli("--list-workloads");
  EXPECT_EQ(rc, 0) << out;
  for (const auto& [name, description] : tilo::workload::kind_registry()) {
    EXPECT_NE(out.find(name), std::string::npos) << name << "\n" << out;
    EXPECT_NE(out.find(description), std::string::npos) << name << "\n"
                                                        << out;
  }
}

TEST(CliTest, FleetPolicyFlagValidatesAgainstTheRegistry) {
  // An unregistered policy is a usage error, and the usage text names
  // every registered policy (generated from the same registry the parser
  // checks, so a new policy cannot go undocumented).
  const auto [rc, out] = run_cli("--fleet-policy no-such-policy");
  EXPECT_EQ(rc, kExitUsage) << out;
  for (const std::string& name : tilo::sched::policy_names())
    EXPECT_NE(out.find(name), std::string::npos) << name << "\n" << out;
}

TEST(CliTest, DagScenarioReportsMakespanAgainstTheAlapBound) {
  const std::string path = ::testing::TempDir() + "cli_dag_scenario.json";
  {
    std::ofstream os(path);
    os << R"({"tilo": "scenario", "version": 1, "workloads": [)"
       << R"({"name": "chol", "source": "cholesky nt=6 b=32",)"
       << R"( "kind": "dag", "auto_procs": 4}]})";
  }
  const auto [rc, out] =
      run_cli("--scenario " + path + " --pipeline --report");
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("ALAP bound"), std::string::npos) << out;
  EXPECT_NE(out.find(">= ALAP bound"), std::string::npos) << out;
  EXPECT_NE(out.find("56 tasks"), std::string::npos) << out;
  // --report attaches the ReportSink per workload: the A/B table ends with
  // the bound printed as a ratio (>= 1.0 by soundness).
  EXPECT_NE(out.find("ALAP lower bound"), std::string::npos) << out;
  EXPECT_NE(out.find("achieved/bound"), std::string::npos) << out;
}

TEST(CliTest, FleetSweepTableMatchesTheLocalSweep) {
  // Same nest, same grid rule: the fleet table must be byte-identical to
  // the single-process --sweep table (the CLI-level determinism check).
  const std::string nest_path = ::testing::TempDir() + "cli_fleet_nest.loop";
  {
    std::ofstream os(nest_path);
    os << "FOR i = 0 TO 63\n FOR j = 0 TO 511\n"
          "  F(i, j) = 0.5 * (F(i-1, j) + F(i, j-1))\n ENDFOR\nENDFOR\n";
  }
  const std::string args = nest_path + " --procs 4x1";
  const auto [local_rc, local_out] = run_cli(args + " --sweep");
  ASSERT_EQ(local_rc, 0) << local_out;

  const std::string sock = ::testing::TempDir() + "cli_fleet.sock";
  std::remove(sock.c_str());
  const auto [fleet_rc, fleet_out] = run_cli(
      args + " --fleet-controller unix:" + sock +
      " --fleet-sweep --fleet-local 2");
  ASSERT_EQ(fleet_rc, 0) << fleet_out;
  EXPECT_NE(fleet_out.find("fleet report"), std::string::npos) << fleet_out;

  // Extract the sweep table: from the header line to the blank line.
  const auto table_of = [](const std::string& out) -> std::string {
    const std::size_t head = out.find("t_overlap");
    if (head == std::string::npos) return "<no table>";
    const std::size_t start = out.rfind('\n', head) + 1;
    const std::size_t end = out.find("\n\n", start);
    return out.substr(start, end == std::string::npos ? end : end - start);
  };
  EXPECT_EQ(table_of(fleet_out), table_of(local_out))
      << "local:\n" << local_out << "\nfleet:\n" << fleet_out;
}

TEST(CliTest, UnknownModelNameExitsSix) {
  const auto [rc, out] = run_cli("--model warp-drive --height 64");
  EXPECT_EQ(rc, kExitUnknownModel) << out;
  EXPECT_NE(out.find("unknown machine model"), std::string::npos) << out;
  // The error teaches the registry: every published name is listed.
  EXPECT_NE(out.find("ideal"), std::string::npos) << out;
  EXPECT_NE(out.find("interference"), std::string::npos) << out;
}

TEST(CliTest, UnreadableMachineFileExitsSeven) {
  const auto [rc, out] =
      run_cli("--machine /no/such/machine.json --height 64");
  EXPECT_EQ(rc, kExitModelFile) << out;
  EXPECT_NE(out.find("cannot open machine file"), std::string::npos) << out;
}

TEST(CliTest, InvalidMachineFileExitsSeven) {
  const std::string path = ::testing::TempDir() + "cli_bad_machine.json";
  {
    std::ofstream os(path);
    os << "{\"tilo\": \"scenario\", \"version\": 1}\n";
  }
  const auto [rc, out] = run_cli("--machine " + path + " --height 64");
  EXPECT_EQ(rc, kExitModelFile) << out;
  EXPECT_NE(out.find("invalid machine file"), std::string::npos) << out;
}

TEST(CliTest, NamedModelCompilesLocally) {
  const auto [rc, out] =
      run_cli("--model interference --height 64 --schedule overlap");
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("overlapping:"), std::string::npos) << out;
}

TEST(CliTest, CalibrateWritesALoadableModel) {
  const std::string path = ::testing::TempDir() + "cli_calibrated.json";
  const auto [rc, out] = run_cli("--calibrate " + path);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("calibrated against"), std::string::npos) << out;
  EXPECT_NE(out.find("residuals"), std::string::npos) << out;
  // The written file loads straight back through --machine.
  const auto [rc2, out2] =
      run_cli("--machine " + path + " --height 64 --schedule overlap");
  EXPECT_EQ(rc2, 0) << out2;
  EXPECT_NE(out2.find("overlapping:"), std::string::npos) << out2;
}

TEST(CliTest, CalibrateToUnwritablePathExitsThree) {
  const auto [rc, out] = run_cli("--calibrate /no/such/dir/model.json");
  EXPECT_EQ(rc, kExitFileIo) << out;
}
