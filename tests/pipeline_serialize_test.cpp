// Serialization properties the pipeline guarantees: serialize →
// deserialize → serialize is byte-identical, and a deserialized plan
// replays to bit-identical simulation results — for all three paper
// spaces.  Plus schema-envelope and malformed-input failure modes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "tilo/core/recommend.hpp"
#include "tilo/loopnest/parse.hpp"
#include "tilo/machine/model.hpp"
#include "tilo/pipeline/compiler.hpp"
#include "tilo/pipeline/serialize.hpp"
#include "tilo/util/error.hpp"

namespace {

using namespace tilo;
using sched::ScheduleKind;
using util::i64;

std::vector<core::Problem> paper_problems() {
  return {core::paper_problem_i(), core::paper_problem_ii(),
          core::paper_problem_iii()};
}

TEST(PipelineSerialize, PlanRoundTripIsByteIdentical) {
  for (const core::Problem& problem : paper_problems()) {
    for (auto kind : {ScheduleKind::kNonOverlap, ScheduleKind::kOverlap}) {
      const exec::TilePlan plan = problem.plan(64, kind);
      const std::string once =
          pipeline::plan_to_json(problem.nest, problem.machine, plan).dump();
      const pipeline::PlanBundle bundle =
          pipeline::plan_from_json(pipeline::Json::parse(once));
      const std::string twice =
          pipeline::plan_to_json(bundle.nest, bundle.machine, bundle.plan)
              .dump();
      EXPECT_EQ(once, twice) << problem.nest.name();
    }
  }
}

TEST(PipelineSerialize, DeserializedPlanReplaysBitIdentically) {
  for (const core::Problem& problem : paper_problems()) {
    const exec::TilePlan plan = problem.plan(64, ScheduleKind::kOverlap);
    const exec::RunResult reference =
        exec::run_plan(problem.nest, plan, problem.machine);

    const pipeline::PlanBundle bundle = pipeline::plan_from_json(
        pipeline::Json::parse(
            pipeline::plan_to_json(problem.nest, problem.machine, plan)
                .dump()));
    const pipeline::ArtifactStore out = pipeline::Compiler().replay(
        bundle.nest, bundle.machine, bundle.plan);
    ASSERT_TRUE(out.backend().run.has_value());
    const exec::RunResult& replayed = *out.backend().run;
    EXPECT_EQ(replayed.completion, reference.completion)
        << problem.nest.name();
    EXPECT_EQ(replayed.messages, reference.messages);
    EXPECT_EQ(replayed.bytes, reference.bytes);
    EXPECT_EQ(replayed.events, reference.events);
  }
}

TEST(PipelineSerialize, BundleCarriesTheKernelForFunctionalReplay) {
  const core::Problem problem = core::paper_problem_iii();
  const exec::TilePlan plan = problem.plan(64, ScheduleKind::kOverlap);
  const pipeline::PlanBundle bundle = pipeline::plan_from_json(
      pipeline::Json::parse(
          pipeline::plan_to_json(problem.nest, problem.machine, plan)
              .dump()));
  // The source text rode along, so the reloaded nest still has its body.
  ASSERT_TRUE(bundle.nest.has_kernel());
  EXPECT_EQ(bundle.nest.domain(), problem.nest.domain());
  EXPECT_EQ(bundle.nest.deps().vectors(), problem.nest.deps().vectors());
}

TEST(PipelineSerialize, MachineRoundTripIsByteIdentical) {
  mach::MachineParams m = mach::MachineParams::paper_cluster();
  m.t_c = 1.0 / 3.0;  // exercise a non-terminating decimal
  const std::string once = pipeline::machine_to_json(m).dump();
  const mach::MachineParams back =
      pipeline::machine_from_json(pipeline::Json::parse(once));
  EXPECT_EQ(pipeline::machine_to_json(back).dump(), once);
  EXPECT_EQ(back.t_c, m.t_c);
  EXPECT_EQ(back.bytes_per_element, m.bytes_per_element);
  EXPECT_EQ(back.cache.capacity_bytes, m.cache.capacity_bytes);
}

TEST(PipelineSerialize, RecommendationRoundTripIsByteIdentical) {
  const core::Problem seed = core::paper_problem_iii();
  const core::Recommendation rec =
      core::recommend_plan(seed.nest, seed.machine, 16);
  const std::string once = pipeline::recommendation_to_json(rec).dump();
  const core::Recommendation back =
      pipeline::recommendation_from_json(pipeline::Json::parse(once));
  EXPECT_EQ(pipeline::recommendation_to_json(back).dump(), once);
  EXPECT_EQ(back.V, rec.V);
  EXPECT_EQ(back.predicted_seconds, rec.predicted_seconds);
  EXPECT_EQ(back.problem.procs, rec.problem.procs);
  EXPECT_EQ(back.analytic.V, rec.analytic.V);
}

TEST(PipelineSerialize, RejectsMalformedJson) {
  EXPECT_THROW(pipeline::Json::parse("{\"tilo\": "), util::Error);
  EXPECT_THROW(pipeline::Json::parse("{} trailing"), util::Error);
}

TEST(PipelineSerialize, RejectsWrongDocumentType) {
  try {
    pipeline::plan_from_json(
        pipeline::Json::parse(R"({"tilo": "scenario", "version": 1})"));
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("plan"), std::string::npos)
        << e.what();
  }
}

TEST(PipelineSerialize, RejectsUnsupportedSchemaVersion) {
  const core::Problem problem = core::paper_problem_iii();
  pipeline::Json j = pipeline::plan_to_json(
      problem.nest, problem.machine,
      problem.plan(64, ScheduleKind::kOverlap));
  j.set("version", pipeline::Json::integer(99));
  try {
    pipeline::plan_from_json(j);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(PipelineSerialize, RejectsTamperedNest) {
  const core::Problem problem = core::paper_problem_iii();
  pipeline::Json j = pipeline::nest_to_json(problem.nest);
  // Claim a different domain than the embedded source parses to.
  pipeline::Json* domain = j.find("domain");
  ASSERT_NE(domain, nullptr);
  pipeline::Json hi = pipeline::Json::array();
  hi.push(pipeline::Json::integer(1));
  hi.push(pipeline::Json::integer(1));
  hi.push(pipeline::Json::integer(1));
  domain->set("hi", hi);
  EXPECT_THROW(pipeline::nest_from_json(j), util::Error);
}


TEST(PipelineSerialize, ModelEnvelopeRoundTripsByteIdentically) {
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  // One model of every serializable kind, each with non-default knobs so
  // the config block is exercised, not just the envelope.
  std::vector<std::shared_ptr<const mach::Model>> models;
  models.push_back(std::make_shared<mach::IdealOverlapModel>(p));
  for (const std::string& name : mach::model_names())
    models.push_back(mach::make_model(name, p));
  mach::InterferenceConfig ic;
  ic.beta_kernel = 0.63;
  ic.beta_wire = 0.91;
  ic.mcrit = 12288;
  ic.factor_below = 1.75;
  models.push_back(std::make_shared<mach::InterferenceModel>(p, ic));
  mach::HeteroConfig hc;
  hc.contention = 0.25;
  hc.links.push_back(mach::LinkParams{0, 3, 2.5e-9, 1.5e-5});
  models.push_back(std::make_shared<mach::HeteroLinkModel>(p, hc));

  for (const auto& model : models) {
    ASSERT_NE(model, nullptr);
    const std::string first = pipeline::model_to_json(*model).dump();
    const std::shared_ptr<const mach::Model> reloaded =
        pipeline::model_from_json(pipeline::Json::parse(first));
    ASSERT_NE(reloaded, nullptr) << model->kind();
    EXPECT_EQ(reloaded->kind(), model->kind());
    // Reserializing the reloaded model reproduces the exact bytes.
    EXPECT_EQ(pipeline::model_to_json(*reloaded).dump(), first)
        << model->kind();
    // And the reloaded model prices steps identically.
    mach::StepShape shape;
    shape.iterations = 16 * 444;
    shape.send_bytes = {4 * 444};
    shape.recv_bytes = {4 * 444};
    for (auto level :
         {mach::OverlapLevel::kNone, mach::OverlapLevel::kDma,
          mach::OverlapLevel::kDuplexDma})
      EXPECT_EQ(reloaded->step_seconds(shape, level),
                model->step_seconds(shape, level))
          << model->kind();
  }
}

TEST(PipelineSerialize, BareMachineParamsLoadAsIdealModel) {
  // Pre-redesign machine files are bare MachineParams JSON with no
  // envelope; they must keep loading, as an ideal model.
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  const pipeline::Json bare = pipeline::machine_to_json(p);
  ASSERT_EQ(bare.find("tilo"), nullptr);
  const std::shared_ptr<const mach::Model> model =
      pipeline::model_from_json(bare);
  ASSERT_NE(model, nullptr);
  EXPECT_TRUE(model->ideal());
  // The params round-trip bit-for-bit through the bare reader.
  EXPECT_EQ(pipeline::machine_to_json(model->params()).dump(), bare.dump());
}

TEST(PipelineSerialize, ModelEnvelopeRejectsUnknownKind) {
  const mach::MachineParams p = mach::MachineParams::paper_cluster();
  pipeline::Json j =
      pipeline::model_to_json(mach::IdealOverlapModel(p));
  j.set("model", pipeline::Json::string("warp-drive"));
  try {
    pipeline::model_from_json(j);
    FAIL() << "unknown model kind must throw";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("warp-drive"), std::string::npos)
        << e.what();
  }
}

}  // namespace
