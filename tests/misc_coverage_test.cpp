// Coverage for smaller paths not exercised elsewhere: Gantt options,
// enum printers, error branches, skew overflow guard, RNG helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "tilo/lattice/box.hpp"
#include "tilo/lattice/echelon.hpp"
#include "tilo/loopnest/workloads.hpp"
#include "tilo/machine/params.hpp"
#include "tilo/tiling/skew.hpp"
#include "tilo/trace/gantt.hpp"
#include "tilo/util/rng.hpp"

using namespace tilo;
using lat::Mat;
using lat::Vec;

TEST(GanttOptionsTest, CpuPhasesOnlyDropsDmaRows) {
  trace::Timeline tl;
  tl.record(0, trace::Phase::kWire, 0, 100);
  tl.record(0, trace::Phase::kCompute, 0, 10);
  std::ostringstream all;
  std::ostringstream cpu;
  trace::GanttOptions opts;
  opts.width = 10;
  opts.legend = false;
  trace::render_gantt(all, tl, opts);
  opts.cpu_phases_only = true;
  trace::render_gantt(cpu, tl, opts);
  EXPECT_NE(all.str().find('w'), std::string::npos);
  EXPECT_EQ(cpu.str().find('w'), std::string::npos);
  EXPECT_NE(cpu.str().find('C'), std::string::npos);
}

TEST(GanttOptionsTest, WidthValidation) {
  trace::Timeline tl;
  tl.record(0, trace::Phase::kCompute, 0, 10);
  std::ostringstream os;
  trace::GanttOptions opts;
  opts.width = 0;
  EXPECT_THROW(trace::render_gantt(os, tl, opts), util::Error);
}

TEST(EnumPrinterTest, OverlapLevelNames) {
  EXPECT_EQ(mach::to_string(mach::OverlapLevel::kNone), "none");
  EXPECT_EQ(mach::to_string(mach::OverlapLevel::kDma), "dma");
  EXPECT_EQ(mach::to_string(mach::OverlapLevel::kDuplexDma), "duplex-dma");
}

TEST(SkewGuardTest, OverflowReturnsNullopt) {
  // 4 dimensions with huge components: m^(n-1) would overflow the guard.
  const loop::DependenceSet deps(
      {Vec{1, 0, 0, 0}, Vec{1, -2000000, 2000000, -2000000}});
  EXPECT_FALSE(tile::find_legal_skew(deps).has_value());
}

TEST(CompletionTest, NegativeComponentsComplete) {
  const Mat m = lat::unimodular_complete(Vec{-3, 2});
  EXPECT_EQ(m.row(0), (Vec{-3, 2}));
  EXPECT_EQ(std::abs(m.det()), 1);
}

TEST(RngTest, ChanceIsCalibrated) {
  util::Rng rng(12345);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(VecErrorTest, BoundsCheckedAccess) {
  Vec v{1, 2, 3};
  EXPECT_EQ(v.at(2), 3);
  EXPECT_THROW(v.at(3), util::Error);
  v.at(0) = 9;
  EXPECT_EQ(v[0], 9);
}

TEST(MatErrorTest, CheckedAccess) {
  const Mat m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.at(1, 0), 3);
  EXPECT_THROW(m.at(2, 0), util::Error);
  EXPECT_THROW(m.at(0, 2), util::Error);
  EXPECT_THROW((Mat{{1, 2}}).det(), util::Error);  // non-square
}

TEST(BoxStrTest, Rendering) {
  EXPECT_EQ(lat::Box(Vec{0, 0}, Vec{1, 2}).str(), "[(0, 0) .. (1, 2)]");
  EXPECT_EQ((Vec{1, -2}).str(), "(1, -2)");
  EXPECT_EQ((Mat{{1, 0}, {0, 1}}).str(), "[(1, 0); (0, 1)]");
}
